"""partsweep: every network injection point x link schedule, no hangs.

The resilience claim (DESIGN.md §13) is that a degraded, partitioned, or
corrupting link can make requests *fail*, but only ever in a bounded,
typed way: each fetch either succeeds or surfaces a typed errno within
its deadline, nothing blocks forever, and nothing leaks.  This harness
proves it the same way crashsweep proves crash recovery — by sweeping
the whole matrix instead of hand-picking cases:

1. **Record pass** — build the two-machine netbench world (Cider client,
   vanilla-Android origin on one segment), attach an *empty*
   :class:`~repro.sim.faults.FaultPlan` to the client, and run the fetch
   workload clean.  The plan's occurrence counters map every ``net.*``
   injection point the workload actually crosses, and the workload
   reports the virtual instant of its first fetch — the anchor all link
   schedules are scripted against (schedule lookups charge nothing, so
   the boot timeline of every later case replays this one exactly).
2. **Case matrix** — every link schedule alone, every sampled fault site
   (first and last occurrence per visited ``net.*`` point, errno and
   delay outcomes alternating) under a clean link, then the full
   schedule x site cross product.
3. **Sweep** — each case boots a fresh world, installs the scheduled
   link conditions and/or one single-shot fault rule, and runs the fetch
   storm through ``NSURLSession`` + the shared resilience engine.  The
   case passes only if the world ran to completion (a deadlock is a
   failed case, never a hung sweep), every request succeeded or failed
   with a *typed* errno inside ``REQUEST_DEADLINE_NS``, and the client's
   socket-buffer RAM reservations and port tables returned to their
   pre-workload baselines.

The sweep report is byte-comparable with a SHA-256 digest: two same-seed
runs must print identical documents (the ``partition-sweep`` CI job
diffs two hash-seed-flipped runs).

The sweep boots each case's world by cloning a boot snapshot
(``repro.sim.snapshot``) and fans independent cases across fork-server
workers (``repro.sim.parallel``): ``--jobs N`` changes wall-clock only —
the transcript and its digest are byte-identical for every jobs value.

Run::

    PYTHONPATH=src python -m repro.workloads.partsweep \
        [max_cases|all] [--jobs N] [--timings FILE]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt import macho_executable
from ..kernel.errno import (
    EAGAIN,
    ECONNREFUSED,
    ECONNRESET,
    EHOSTUNREACH,
    EIO,
    ENETUNREACH,
    EPIPE,
    ETIMEDOUT,
    errno_name,
)
from ..kernel.process import UserContext
from ..kernel.recovery import _Document
from ..net.conditions import DIR_IN, LinkSchedule, LinkWindow
from ..net.http import ORIGIN_HOST
from ..sim.errors import DeadlockError, MachinePanic
from ..sim.faults import FaultOutcome, FaultPlan, FaultRule
from ..sim.parallel import parse_jobs, run_cases
from ..sim.snapshot import Snapshot, SnapshotCache, snapshot_systems

MACHO_PATH = "/data/partsweep/partfetch"

DEFAULT_FETCHES = 6
DEFAULT_MAX_CASES = 16

#: SO_RCVTIMEO/SO_SNDTIMEO armed on every request socket (virtual ns).
REQUEST_TIMEOUT_NS = 20_000_000.0
#: Every request must resolve — success or typed errno — within this
#: much virtual time (the no-hang budget the sweep asserts per fetch).
REQUEST_DEADLINE_NS = 1_000_000_000.0

#: The errnos a request is *allowed* to fail with.  Anything else (or a
#: failure with errno 0) fails the case.
TYPED_ERRNOS = frozenset(
    (EAGAIN, ECONNREFUSED, ECONNRESET, EHOSTUNREACH, EIO, ENETUNREACH,
     EPIPE, ETIMEDOUT)
)

#: errno / delay outcome per sweepable injection point.
POINT_OUTCOMES: Dict[str, Tuple[int, float]] = {
    "net.connect": (ECONNREFUSED, 2_000_000.0),
    "net.send": (ECONNRESET, 1_000_000.0),
    "net.partition": (EHOSTUNREACH, 1_500_000.0),
    "net.degrade": (ENETUNREACH, 500_000.0),
    "net.corrupt": (EIO, 0.0),
}

_MS = 1_000_000.0

SCHEDULE_NAMES = (
    "clean", "part-mid", "oneway-in", "flap", "degrade", "corrupt",
)


def build_schedule(name: str, base_ns: float) -> Optional[LinkSchedule]:
    """The named link schedule anchored at the workload's first fetch.
    Built fresh per case — schedules carry the corruption counter."""
    if name == "clean":
        return None
    if name == "part-mid":
        # Full blackout from the third fetch-ish to mid-run.
        return LinkSchedule(
            [LinkWindow.partition(base_ns + 10 * _MS, base_ns + 40 * _MS)]
        )
    if name == "oneway-in":
        # Requests leave the client; responses die on the way back.
        return LinkSchedule(
            [LinkWindow.partition(base_ns, base_ns + 30 * _MS, direction=DIR_IN)]
        )
    if name == "flap":
        return LinkSchedule(
            [LinkWindow.flap(base_ns, base_ns + 120 * _MS, period_ns=16 * _MS)]
        )
    if name == "degrade":
        return LinkSchedule(
            [LinkWindow.degrade(
                base_ns, base_ns + 300 * _MS, latency_x=6.0, bandwidth_x=3.0,
            )]
        )
    if name == "corrupt":
        return LinkSchedule(
            [LinkWindow.corrupt(base_ns, base_ns + 300 * _MS, every=4)]
        )
    raise ValueError(f"unknown schedule {name!r}")


def _params(argv: List[str]) -> Dict:
    return argv[1] if len(argv) > 1 and isinstance(argv[1], dict) else {}


# -- the fetch workload (NSURLSession through the resilience engine) -----------


def partfetch_ios(ctx: UserContext, argv: List[str]) -> int:
    from ..ios.cfnetwork import NSURLSession
    from ..net.resilience import ResilienceEngine, ResiliencePolicy

    params = _params(argv)
    out = params.get("out", {})
    fetches = params.get("fetches", DEFAULT_FETCHES)
    policy = ResiliencePolicy(
        request_timeout_ns=REQUEST_TIMEOUT_NS,
        seed=int(params.get("seed", 0)),
    )
    engine = ResilienceEngine.shared(ctx, policy)
    session = NSURLSession.shared(ctx)
    machine = ctx.machine
    out["first_fetch_ns"] = machine.clock.now_ns
    results: List[Tuple[int, int, int]] = []
    for _index in range(fetches):
        start_ns = machine.clock.now_ns
        task = session.data_task_with_url(
            f"http://{ORIGIN_HOST}/hello"
        ).resume()
        elapsed_ns = int(machine.clock.now_ns - start_ns)
        status = (
            task.response.status_code if task.response is not None else -1
        )
        err = 0
        if task.error is not None and "errno=" in task.error:
            err = int(task.error.rsplit("=", 1)[1])
        results.append((status, err, elapsed_ns))
    out["results"] = results
    out["resilience"] = engine.summary()
    out["transitions"] = engine.transition_log()
    return 0


# -- world plumbing ------------------------------------------------------------

#: Boot-snapshot cache: the expensive, thread-free half of the world is
#: captured once per process; every case (and the record pass) clones it.
#: Fork-server workers inherit the populated cache through ``fork``.
_SNAPSHOTS = SnapshotCache()


def _capture_world() -> "Snapshot":
    """Snapshot the quiescent two-machine world: Cider client (services
    not yet started) + vanilla-Android origin (httpd not yet started) on
    one segment, workload binary installed, resource envelope attached.
    Everything here is pure data — no simulated thread exists yet."""
    from ..cider.system import build_cider, build_vanilla_android
    from .netbench import ORIGIN_NET_IP

    client = build_cider(start_services=False)
    origin = build_vanilla_android(start_services=False)
    origin.machine.net_host_ip = ORIGIN_NET_IP
    client.machine.net.connect_peer(origin.machine.net)
    client.machine.net.register_host(ORIGIN_HOST, ORIGIN_NET_IP)
    vfs = client.kernel.vfs
    vfs.makedirs("/data/partsweep")
    vfs.install_binary(
        MACHO_PATH, macho_executable("partfetch", partfetch_ios)
    )
    client.machine.install_resources()
    return snapshot_systems(client, origin)


def _world_snapshot() -> "Snapshot":
    return _SNAPSHOTS.get_or_capture("partsweep-world", _capture_world)


def _build_world():
    """One fresh world per case: clone the boot snapshot, then finish
    each machine's boot on its private copy (launchd on the client, the
    httpd accept loop on the origin — the thread-bearing half).  The
    world is bare: no observatories — reports must not depend on them."""
    from ..net.http import start_httpd_android

    client, origin = _world_snapshot().clone()
    client.start_services()
    start_httpd_android(origin)
    origin.run_until_idle()  # let the origin reach its accept loop
    return client, origin


def _run_world_workload(client, origin, fetches: int, seed: int) -> Dict:
    from ..cider.system import run_world

    out: Dict[str, object] = {}
    params = {"out": out, "fetches": fetches, "seed": seed}
    process = client.kernel.start_process(MACHO_PATH, [MACHO_PATH, params])
    thread = process.main_thread().sim_thread
    result = run_world([client, origin], thread)
    code = result if isinstance(result, int) else 0
    if code != 0:
        raise RuntimeError(f"partfetch exited {code}")
    return out


def record_pass(fetches: int = DEFAULT_FETCHES, seed: int = 0):
    """Clean run: which ``net.*`` points does the workload cross (and how
    often), and when does its first fetch start?"""
    client, origin = _build_world()
    plan = client.machine.install_fault_plan(FaultPlan(seed=seed))
    out = _run_world_workload(client, origin, fetches, seed)
    occurrences = {
        point: count
        for point, count in plan.occurrences.items()
        if point.startswith("net.")
    }
    client.machine.faults = None
    for status, err, _elapsed in out["results"]:
        if status != 200:
            raise RuntimeError(
                f"clean record pass failed a fetch (status={status} "
                f"errno={err})"
            )
    first_fetch_ns = float(out["first_fetch_ns"])
    client.shutdown()
    origin.shutdown()
    return occurrences, first_fetch_ns


def sample_sites(
    occurrences: Dict[str, int]
) -> List[Tuple[str, int, str]]:
    """Deterministic ``(point, nth, kind)`` sample: first and last
    occurrence per crossed point, errno and delay outcomes alternating."""
    candidates: List[Tuple[str, int]] = []
    for point in sorted(occurrences):
        if point not in POINT_OUTCOMES:
            continue
        count = occurrences[point]
        candidates.append((point, 1))
        if count > 1:
            candidates.append((point, count))
    return [
        (point, nth, "delay" if index % 2 else "errno")
        for index, (point, nth) in enumerate(candidates)
    ]


def build_cases(
    sites: List[Tuple[str, int, str]],
    max_cases: Optional[int] = DEFAULT_MAX_CASES,
) -> List[Tuple[str, Optional[Tuple[str, int, str]]]]:
    """The sweep matrix, most-informative first: each schedule alone,
    each fault site under a clean link, then the full cross product."""
    cases: List[Tuple[str, Optional[Tuple[str, int, str]]]] = []
    for name in SCHEDULE_NAMES:
        cases.append((name, None))
    for site in sites:
        cases.append(("clean", site))
    for name in SCHEDULE_NAMES:
        if name == "clean":
            continue
        for site in sites:
            cases.append((name, site))
    if max_cases is not None:
        cases = cases[:max_cases]
    return cases


def sweep_case(
    schedule_name: str,
    site: Optional[Tuple[str, int, str]],
    first_fetch_ns: float,
    fetches: int = DEFAULT_FETCHES,
    seed: int = 0,
) -> Tuple[str, bool]:
    """One world under one (schedule, fault site) pair; returns the
    byte-comparable report line and pass/fail."""
    client, origin = _build_world()
    machine = client.machine
    stack = machine.net
    schedule = build_schedule(schedule_name, first_fetch_ns)
    if schedule is not None:
        stack.install_schedule(schedule)
    fired = 0
    if site is not None:
        point, nth, kind = site
        errno_val, delay_ns = POINT_OUTCOMES[point]
        outcome = (
            FaultOutcome.errno(errno_val)
            if kind == "errno"
            else FaultOutcome.delay(delay_ns)
        )
        plan = FaultPlan(seed=seed)
        plan.add_rule(
            FaultRule(
                point,
                outcome,
                rule_id=f"sweep:{point}#{nth}:{kind}",
                nth=nth,
                max_fires=1,
            )
        )
        machine.install_fault_plan(plan)
        label = f"{schedule_name}/{point}#{nth}:{kind}"
    else:
        plan = None
        label = f"{schedule_name}/-"

    res = machine.resources
    assert res is not None
    base_ram = res.ram_used
    base_tcp = len(stack.tcp_ports)
    base_udp = len(stack.udp_ports)

    status_line: Optional[str] = None
    ok_count = fail_count = 0
    errnos: List[int] = []
    max_elapsed = 0
    transitions = 0
    try:
        out = _run_world_workload(client, origin, fetches, seed)
    except DeadlockError:
        status_line = "HUNG (deadlock)"
    except MachinePanic:
        status_line = "PANICKED"
    except RuntimeError as exc:
        status_line = str(exc)
    if status_line is None:
        for status, err, elapsed_ns in out["results"]:
            max_elapsed = max(max_elapsed, elapsed_ns)
            if status == 200:
                ok_count += 1
            else:
                fail_count += 1
                errnos.append(err)
        transitions = len(out["transitions"])
    client.run_until_idle()
    origin.run_until_idle()
    if plan is not None:
        fired = plan.fired
    leak_bits = []
    if res.ram_used != base_ram:
        leak_bits.append(f"ram={res.ram_used - base_ram:+d}")
    if len(stack.tcp_ports) != base_tcp:
        leak_bits.append(f"tcp_ports={len(stack.tcp_ports) - base_tcp:+d}")
    if len(stack.udp_ports) != base_udp:
        leak_bits.append(f"udp_ports={len(stack.udp_ports) - base_udp:+d}")
    leaks = ",".join(leak_bits) if leak_bits else "none"
    client.shutdown()
    origin.shutdown()

    if status_line is not None:
        return f"partsweep: {label}: {status_line} -> FAILED", False
    typed = all(err in TYPED_ERRNOS for err in errnos)
    in_deadline = max_elapsed <= REQUEST_DEADLINE_NS
    passed = typed and in_deadline and leaks == "none"
    names = "+".join(sorted({errno_name(e) for e in errnos})) or "-"
    line = (
        f"partsweep: {label}: ok={ok_count} fail={fail_count} "
        f"errnos={names} fired={fired} transitions={transitions} "
        f"max_req_ns={max_elapsed} leaks={leaks} "
        f"-> {'PASS' if passed else 'FAILED'}"
    )
    return line, passed


class SweepReport(_Document):
    """The byte-comparable sweep transcript (one line per case)."""

    def __init__(self) -> None:
        super().__init__()
        self.cases = 0
        self.passed = 0


def run_sweep(
    max_cases: Optional[int] = DEFAULT_MAX_CASES,
    fetches: int = DEFAULT_FETCHES,
    seed: int = 0,
    jobs: int = 1,
) -> SweepReport:
    """The full sweep.  ``jobs > 1`` fans the independent cases out
    across a fork-server worker pool (``repro.sim.parallel``); the
    merged report is byte-identical to a serial run — the report text
    never mentions ``jobs``, and results are merged in case order."""
    occurrences, first_fetch_ns = record_pass(fetches, seed)
    sites = sample_sites(occurrences)
    cases = build_cases(sites, max_cases)
    report = SweepReport()
    report.line(
        f"partsweep: workload crosses {len(occurrences)} net point(s), "
        f"{sum(occurrences.values())} occurrence(s); first fetch at "
        f"{int(first_fetch_ns)}ns"
    )
    report.line(
        f"partsweep: sweeping {len(cases)} case(s) "
        f"({len(SCHEDULE_NAMES)} schedule(s) x {len(sites)} site(s))"
    )

    def one_case(index: int):
        schedule_name, site = cases[index]
        return sweep_case(schedule_name, site, first_fetch_ns, fetches, seed)

    # The record pass above already populated the boot-snapshot cache,
    # so forked workers inherit the world image and never re-boot it.
    results = run_cases(
        len(cases), one_case, jobs=jobs, prime=_world_snapshot
    )
    for line, ok in results:
        report.line(line)
        report.cases += 1
        if ok:
            report.passed += 1
    report.line(f"partsweep: {report.passed}/{report.cases} case(s) passed")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import json
    import sys
    import time

    args = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: python -m repro.workloads.partsweep "
        "[max_cases|all] [--jobs N] [--timings FILE]"
    )
    max_cases: Optional[int] = DEFAULT_MAX_CASES
    jobs = 1
    timings_path: Optional[str] = None
    try:
        while args:
            arg = args.pop(0)
            if arg == "--jobs":
                jobs = parse_jobs(args.pop(0))
            elif arg == "--timings":
                timings_path = args.pop(0)
            elif arg == "all":
                max_cases = None
            else:
                max_cases = int(arg)
    except (IndexError, ValueError):
        print(usage, file=sys.stderr)
        return 2
    start = time.perf_counter()
    report = run_sweep(max_cases, jobs=jobs)
    wall_seconds = time.perf_counter() - start
    print(report.text(), end="")
    print(f"sweep sha256: {report.digest()}")
    if timings_path is not None:
        with open(timings_path, "w") as fh:
            json.dump(
                {
                    "harness": "partsweep",
                    "jobs": jobs,
                    "cases": report.cases,
                    "wall_seconds": round(wall_seconds, 3),
                },
                fh,
                sort_keys=True,
            )
            fh.write("\n")
    return 0 if report.passed == report.cases else 1


if __name__ == "__main__":
    raise SystemExit(main())
