"""schedsweep: systematic interleaving search over planted concurrency bugs.

The exploration engine (:mod:`repro.sim.explore`, DESIGN.md §15) claims
that interleaving-dependent bugs hiding outside the default FIFO
schedule are *findable*, that every finding dedupes to one canonical
report with a minimized replayable choice trace, and that the whole
search is deterministic.  This harness proves it on three scenarios,
each a small multi-threaded iOS program run on a snapshot-cloned Cider
world:

* **race** — a producer/consumer pipeline over pipes whose main thread
  has a planted schedule-dependent flush: clean under FIFO, an
  unsynchronized write on schedules where main runs before the consumer
  acked.  The DFS must find exactly one race, dedupe it, and minimize
  the trace to the single deviation that exposes it.
* **lockdep** — two threads taking two psynch mutexes in inverted order
  with a yield in the middle.  The default schedule interleaves them
  straight into a deadlock (reported with the blocked thread set); a
  one-deviation schedule serializes them, never deadlocks, and still
  reports the AB/BA lock-order cycle.
* **clean** — the race scenario's fully synchronized twin: seeded random
  walks must find *nothing* (the no-false-positive control).

The sweep report is byte-comparable with a SHA-256 digest: report lines
come only from choice traces (thread names, never ids), canonical
failure strings and replay outcomes, so two runs — any ``--jobs`` value,
any ``PYTHONHASHSEED`` — must print identical documents (the
``schedule-fuzz`` CI job diffs them).

Schedules re-execute from one boot snapshot (``repro.sim.snapshot``)
and fan out across fork-server workers (``repro.sim.parallel``):
``--jobs N`` changes wall-clock only.

Run::

    PYTHONPATH=src python -m repro.workloads.schedsweep \
        [budget] [--jobs N] [--timings FILE]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt import macho_executable
from ..kernel.process import UserContext
from ..kernel.recovery import _Document
from ..sim.errors import DeadlockError, MachinePanic
from ..sim.explore import (
    Exploration,
    SchedulePolicy,
    explore,
    schedule_result,
)
from ..sim.parallel import parse_jobs
from ..sim.snapshot import Snapshot, SnapshotCache, snapshot_systems

RACER_PATH = "/data/schedsweep/racer"
LOCKER_PATH = "/data/schedsweep/locker"
CLEAN_PATH = "/data/schedsweep/cleanrun"

#: Per-scenario schedule budget (the CLI positional overrides it).
DEFAULT_BUDGET = 64


# -- the planted workloads -----------------------------------------------------


def _tally(ctx: UserContext, var: str, label: str, write: bool = True):
    """Annotate a shared-state access for the happens-before monitor.
    A no-op when no monitor is installed (the zero-cost default)."""
    hb = ctx.machine.hb
    if hb is not None:
        hb.access(var, write, label)


def racer_ios(ctx: UserContext, argv: List[str]) -> int:
    """The planted race: a producer/consumer pipeline over pipes whose
    main thread flushes the tally itself when the consumer has not acked
    by the time its yield returns.  Under FIFO the consumer always runs
    first (clean); any schedule that runs main before the consumer makes
    ``main:flush`` an unsynchronized write against ``consumer:add``."""
    libc = ctx.libc
    data_r, data_w = libc.pipe()
    done_r, done_w = libc.pipe()
    state = {"acked": False}

    def producer(tctx: UserContext) -> int:
        tctx.libc.write(data_w, b"x")
        return 0

    def consumer(tctx: UserContext) -> int:
        tctx.libc.read(data_r, 1)
        _tally(tctx, "race.tally", "consumer:add")
        state["acked"] = True
        tctx.libc.write(done_w, b"k")
        return 0

    libc.pthread_create(producer, "producer")
    libc.pthread_create(consumer, "consumer")
    libc.sched_yield()
    if not state["acked"]:
        _tally(ctx, "race.tally", "main:flush")  # the planted bug
    libc.read(done_r, 1)  # join edge: acquires the consumer's history
    _tally(ctx, "race.tally", "main:check", write=False)
    return 0


def locker_ios(ctx: UserContext, argv: List[str]) -> int:
    """The planted lock-order inversion: ``ab`` locks A then B, ``ba``
    locks B then A, each yielding between its two acquisitions.  FIFO
    interleaves them straight into a deadlock; schedules that serialize
    one thread complete cleanly but still record both lock-order edges —
    the AB/BA cycle lockdep must report without any deadlock."""
    libc = ctx.libc
    mutex_a = libc.pthread_mutex_init()
    mutex_b = libc.pthread_mutex_init()
    done_r, done_w = libc.pipe()

    def ab(tctx: UserContext) -> int:
        tlibc = tctx.libc
        tlibc.pthread_mutex_lock(mutex_a)
        tlibc.sched_yield()
        tlibc.pthread_mutex_lock(mutex_b)
        tlibc.pthread_mutex_unlock(mutex_b)
        tlibc.pthread_mutex_unlock(mutex_a)
        tlibc.write(done_w, b"a")
        return 0

    def ba(tctx: UserContext) -> int:
        tlibc = tctx.libc
        tlibc.pthread_mutex_lock(mutex_b)
        tlibc.sched_yield()
        tlibc.pthread_mutex_lock(mutex_a)
        tlibc.pthread_mutex_unlock(mutex_a)
        tlibc.pthread_mutex_unlock(mutex_b)
        tlibc.write(done_w, b"b")
        return 0

    libc.pthread_create(ab, "ab")
    libc.pthread_create(ba, "ba")
    libc.read(done_r, 1)
    libc.read(done_r, 1)
    return 0


def clean_ios(ctx: UserContext, argv: List[str]) -> int:
    """The race scenario's fully synchronized twin: every tally access
    is ordered by a pipe transfer, so no schedule may report anything."""
    libc = ctx.libc
    data_r, data_w = libc.pipe()
    done_r, done_w = libc.pipe()

    def producer(tctx: UserContext) -> int:
        _tally(tctx, "clean.tally", "producer:seed")
        tctx.libc.write(data_w, b"x")
        return 0

    def consumer(tctx: UserContext) -> int:
        tctx.libc.read(data_r, 1)
        _tally(tctx, "clean.tally", "consumer:add")
        tctx.libc.write(done_w, b"k")
        return 0

    libc.pthread_create(producer, "producer")
    libc.pthread_create(consumer, "consumer")
    libc.read(done_r, 1)
    _tally(ctx, "clean.tally", "main:total")
    return 0


# -- world plumbing ------------------------------------------------------------

#: Boot-snapshot cache: the quiescent Cider world is captured once per
#: process; every explored schedule clones it.  Fork-server workers
#: inherit the populated cache through ``fork``.
_SNAPSHOTS = SnapshotCache()


def _capture_world() -> "Snapshot":
    """Snapshot the quiescent Cider system with the three scenario
    binaries installed — pure data, no simulated thread exists yet."""
    from ..cider.system import build_cider

    system = build_cider(start_services=False)
    vfs = system.kernel.vfs
    vfs.makedirs("/data/schedsweep")
    vfs.install_binary(RACER_PATH, macho_executable("racer", racer_ios))
    vfs.install_binary(LOCKER_PATH, macho_executable("locker", locker_ios))
    vfs.install_binary(CLEAN_PATH, macho_executable("cleanrun", clean_ios))
    return snapshot_systems(system)


def _world_snapshot() -> "Snapshot":
    return _SNAPSHOTS.get_or_capture("schedsweep-world", _capture_world)


def run_scenario_schedule(
    path: str, policy: SchedulePolicy
) -> Dict[str, object]:
    """Execute one scenario under one schedule policy in a fresh cloned
    world; returns the picklable :func:`schedule_result` dict."""
    (system,) = _world_snapshot().clone()
    return run_schedule_on(system, path, policy)


def run_schedule_on(
    system, path: str, policy: SchedulePolicy
) -> Dict[str, object]:
    """Run one scenario binary on ``system`` under ``policy``; consumes
    the system (it is shut down afterwards).

    The system finishes its boot (launchd) *before* the policy installs,
    so boot choices stay FIFO and choice-point ids always start at the
    workload; the monitor installs after boot for the same reason."""
    system.start_services()
    machine = system.machine
    monitor = machine.install_hb_monitor()
    machine.scheduler.set_policy(policy)
    status = "ok"
    deadlocked: List[str] = []
    try:
        code = system.run_program(path, [path])
        if code != 0:
            status = f"error: exit {code}"
    except DeadlockError:
        status = "deadlock"
        deadlocked = sorted(
            thread.name
            for thread in machine.scheduler.live_threads()
            if not thread.daemon
        )
    except MachinePanic as exc:
        status = f"error: panic: {exc}"
    finally:
        machine.scheduler.clear_policy()
        machine.clear_hb_monitor()
    try:
        system.shutdown()
    except Exception:
        pass  # a deadlocked clone is discarded, not recovered
    return schedule_result(policy, status, monitor, deadlocked)


# -- scenario expectations -----------------------------------------------------


def _check_race(result: Exploration) -> Tuple[bool, str]:
    keys = list(result.failures)
    ok = (
        len(keys) == 1
        and keys[0][0] == "race"
        and "main:flush" in keys[0][1]
        and result.failures[keys[0]]["reproduced"]
        and len(result.failures[keys[0]]["minimized"]) <= 1
    )
    return ok, "one deduped race, minimized to <=1 deviation, reproduced"


def _check_lockdep(result: Exploration) -> Tuple[bool, str]:
    kinds = sorted(kind for kind, _detail in result.failures)
    cycles = [k for k in result.failures if k[0] == "lockdep"]
    deadlocks = [k for k in result.failures if k[0] == "deadlock"]
    ok = (
        kinds == ["deadlock", "lockdep"]
        and len(cycles) == 1
        and len(deadlocks) == 1
        and all(rec["reproduced"] for rec in result.failures.values())
    )
    return ok, "one AB/BA cycle + one deadlock, both reproduced"


def _check_clean(result: Exploration) -> Tuple[bool, str]:
    return not result.failures, "no failures on any explored schedule"


#: (name, binary, mode, explore kwargs, expectation checker).
SCENARIOS: Tuple = (
    ("race", RACER_PATH, "dfs",
     dict(depth=12, preemptions=2), _check_race),
    ("lockdep", LOCKER_PATH, "dfs",
     dict(depth=12, preemptions=2), _check_lockdep),
    ("clean", CLEAN_PATH, "random",
     dict(preemptions=3), _check_clean),
)


class SweepReport(_Document):
    """The byte-comparable sweep transcript."""

    def __init__(self) -> None:
        super().__init__()
        self.scenarios = 0
        self.passed = 0
        self.explored = 0


def run_sweep(budget: int = DEFAULT_BUDGET, jobs: int = 1) -> SweepReport:
    """Explore every scenario.  ``jobs > 1`` fans each wave of schedules
    across a fork-server worker pool; the merged report is byte-identical
    to a serial run — report lines never mention ``jobs``."""
    report = SweepReport()
    report.line(
        f"schedsweep: {len(SCENARIOS)} scenario(s), "
        f"budget {budget} schedule(s) each"
    )
    for name, path, mode, kwargs, check in SCENARIOS:
        result = explore(
            lambda policy, _path=path: run_scenario_schedule(_path, policy),
            mode=mode,
            budget=budget,
            jobs=jobs,
            prime=_world_snapshot,
            **kwargs,
        )
        prefix = f"schedsweep[{name}]"
        for line in result.lines(prefix):
            report.line(line)
        ok, expectation = check(result)
        report.line(
            f"{prefix}: expected {expectation} "
            f"-> {'PASS' if ok else 'FAILED'}"
        )
        report.scenarios += 1
        report.explored += result.explored
        if ok:
            report.passed += 1
    report.line(
        f"schedsweep: {report.passed}/{report.scenarios} scenario(s) "
        f"passed ({report.explored} schedule(s) explored)"
    )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import json
    import sys
    import time

    args = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: python -m repro.workloads.schedsweep "
        "[budget] [--jobs N] [--timings FILE]"
    )
    budget = DEFAULT_BUDGET
    jobs = 1
    timings_path: Optional[str] = None
    try:
        while args:
            arg = args.pop(0)
            if arg == "--jobs":
                jobs = parse_jobs(args.pop(0))
            elif arg == "--timings":
                timings_path = args.pop(0)
            else:
                budget = int(arg)
    except (IndexError, ValueError):
        print(usage, file=sys.stderr)
        return 2
    start = time.perf_counter()
    report = run_sweep(budget, jobs=jobs)
    wall_seconds = time.perf_counter() - start
    print(report.text(), end="")
    print(f"sweep sha256: {report.digest()}")
    if timings_path is not None:
        with open(timings_path, "w") as fh:
            json.dump(
                {
                    "harness": "schedsweep",
                    "jobs": jobs,
                    "schedules": report.explored,
                    "wall_seconds": round(wall_seconds, 3),
                },
                fh,
                sort_keys=True,
            )
            fh.write("\n")
    return 0 if report.passed == report.scenarios else 1


if __name__ == "__main__":
    raise SystemExit(main())
