"""netbench: network microbenchmarks, Android vs Cider-iOS on one device.

Two phases, each "compiled" into both binary formats (the lmbench
pattern) and run against the same launchd-supervised in-sim origin on
the same machine:

* **fetch** — repeated small GETs (``/hello``) through each persona's
  native fetch API (``HttpURLConnection`` on Android, ``NSURLSession``
  on iOS), reporting mean per-fetch latency in virtual ns.
* **stream** — one large GET (``/bytes/N``) reporting goodput in
  virtual MB/s, plus a *storm*: C worker pthreads each fetching
  concurrently (exercises listener backlog + select/kqueue readiness
  under the deterministic scheduler).

Because both personas' clients dispatch into the *same* kernel socket
implementation, the iOS column differs from the Android column only by
the documented persona/dispatch overhead — the network-path half of the
paper's pass-through claim.  The summary ends with the machine's packet
log digest: two same-seed runs must print identical documents
(``tests/test_net.py`` and the ``net-determinism`` CI job assert it).

Run::

    PYTHONPATH=src python -m repro.workloads.netbench [--jobs N]

``--jobs N`` runs N independent replicas of the whole benchmark across
fork-server workers (``repro.sim.parallel``) and asserts every replica
renders the byte-identical document — the parallel determinism
self-check the ``net-determinism`` CI job exercises.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..binfmt import elf_executable, macho_executable
from ..kernel.process import UserContext
from ..net.http import ORIGIN_HOST

DEFAULT_FETCHES = 8
DEFAULT_STREAM_KB = 256
DEFAULT_STORM_WORKERS = 4

ELF_PATH = "/data/netbench/netbench"
MACHO_PATH = "/data/netbench-ios/netbench"

#: Two-machine ("world") mode: the Cider client fetches from a second,
#: vanilla-Android machine over the virtual segment.
WORLD_MACHO_PATH = "/data/netbench-world/netbench"
ORIGIN_NET_IP = "10.0.2.16"
DEFAULT_WORLD_FETCHES = 2


def _params(argv: List[str]) -> Dict:
    return argv[1] if len(argv) > 1 and isinstance(argv[1], dict) else {}


def _percentile(samples: List[float], q: float) -> float:
    """Deterministic nearest-rank percentile (no interpolation)."""
    import math

    ordered = sorted(samples)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


# -- benchmark bodies ----------------------------------------------------------


def bench_android(ctx: UserContext, argv: List[str]) -> int:
    """The domestic client: java.net-style HttpURLConnection."""
    from ..android.urlconnection import url_open

    params = _params(argv)
    out = params.get("out", {})
    fetches = params.get("fetches", DEFAULT_FETCHES)
    stream_kb = params.get("stream_kb", DEFAULT_STREAM_KB)
    workers = params.get("storm_workers", DEFAULT_STORM_WORKERS)
    base = f"http://{ORIGIN_HOST}"

    watch = ctx.machine.stopwatch()
    samples: List[float] = []
    for _ in range(fetches):
        watch.restart()
        conn = url_open(ctx, base + "/hello")
        assert conn.get_response_code() == 200
        conn.disconnect()
        samples.append(watch.elapsed_ns())
    out["fetch_ns"] = sum(samples) / fetches
    out["fetch_p50_ns"] = _percentile(samples, 0.50)
    out["fetch_p95_ns"] = _percentile(samples, 0.95)

    watch.restart()
    conn = url_open(ctx, f"{base}/bytes/{stream_kb * 1024}")
    body = conn.read_body()
    assert conn.get_response_code() == 200 and len(body) == stream_kb * 1024
    elapsed = watch.elapsed_ns()
    out["stream_mb_s"] = (stream_kb / 1024.0) / (elapsed / 1e9)

    done = {"count": 0}

    def worker(wctx: UserContext) -> int:
        wconn = url_open(wctx, base + "/hello")
        assert wconn.get_response_code() == 200
        done["count"] += 1
        return 0

    watch.restart()
    for _ in range(workers):
        ctx.libc.pthread_create(worker, name="storm")
    while done["count"] < workers:
        ctx.libc.sched_yield()
    out["storm_ns"] = watch.elapsed_ns()
    return 0


def bench_ios(ctx: UserContext, argv: List[str]) -> int:
    """The foreign client: NSURLSession data tasks — byte-for-byte the
    same request/response exchange, reached through XNU trap numbers."""
    from ..ios.cfnetwork import NSURLSession

    params = _params(argv)
    out = params.get("out", {})
    fetches = params.get("fetches", DEFAULT_FETCHES)
    stream_kb = params.get("stream_kb", DEFAULT_STREAM_KB)
    workers = params.get("storm_workers", DEFAULT_STORM_WORKERS)
    base = f"http://{ORIGIN_HOST}"
    session = NSURLSession.shared(ctx)

    watch = ctx.machine.stopwatch()
    samples: List[float] = []
    for _ in range(fetches):
        watch.restart()
        task = session.data_task_with_url(base + "/hello").resume()
        assert task.response is not None and task.response.status_code == 200
        samples.append(watch.elapsed_ns())
    out["fetch_ns"] = sum(samples) / fetches
    out["fetch_p50_ns"] = _percentile(samples, 0.50)
    out["fetch_p95_ns"] = _percentile(samples, 0.95)

    watch.restart()
    task = session.data_task_with_url(
        f"{base}/bytes/{stream_kb * 1024}"
    ).resume()
    assert task.response is not None and task.response.status_code == 200
    assert len(task.data) == stream_kb * 1024
    elapsed = watch.elapsed_ns()
    out["stream_mb_s"] = (stream_kb / 1024.0) / (elapsed / 1e9)

    done = {"count": 0}

    def worker(wctx: UserContext) -> int:
        wtask = NSURLSession.shared(wctx).data_task_with_url(
            base + "/hello"
        ).resume()
        assert wtask.response is not None
        assert wtask.response.status_code == 200
        done["count"] += 1
        return 0

    watch.restart()
    for _ in range(workers):
        ctx.libc.pthread_create(worker, name="storm")
    while done["count"] < workers:
        ctx.libc.sched_yield()
    out["storm_ns"] = watch.elapsed_ns()
    return 0


def bench_world_ios(ctx: UserContext, argv: List[str]) -> int:
    """Two-machine traced client: each request is one causal trace.

    The plain requests are single-threaded on the client, so the charged
    picoseconds of the client's clock across one request equal the root
    span's ``total_ps`` exactly (the origin's work charges the *origin's*
    clock; blocking charges nothing) — the equality the causal-trace
    acceptance test asserts.  The final request first resolves notifyd
    through launchd (a Mach IPC RPC), so its trace spans client persona →
    Mach IPC → kernel sockets → virtual NIC → origin service and back.
    """
    from ..ios.services import NOTIFYD_SERVICE
    from ..net.http import HELLO_BODY, HTTPD_PORT, http_get

    params = _params(argv)
    out = params.get("out", {})
    fetches = params.get("fetches", DEFAULT_WORLD_FETCHES)
    machine = ctx.machine
    obs = machine.obs
    causal = obs.causal if obs is not None else None

    charged: List[int] = []
    for index in range(fetches):
        if causal is not None:
            causal.begin_trace(f"GET /hello #{index}")
        before = machine.clock.charged_ps
        with machine.span("netbench.request", "/hello", index=index):
            status, body = http_get(ctx, ORIGIN_HOST, "/hello", HTTPD_PORT)
        charged.append(machine.clock.charged_ps - before)
        if causal is not None:
            causal.end_trace()
        assert status == 200 and body == HELLO_BODY
    out["request_charged_ps"] = charged

    # Last request rides a Mach IPC hop before touching the network.
    if causal is not None:
        causal.begin_trace("GET /hello via-mach")
    with machine.span("netbench.request", "/hello-mach"):
        port = ctx.libc.bootstrap_look_up(NOTIFYD_SERVICE)
        assert port != 0, "bootstrap_look_up(notifyd) failed"
        status, body = http_get(ctx, ORIGIN_HOST, "/hello", HTTPD_PORT)
    if causal is not None:
        causal.end_trace()
    assert status == 200 and body == HELLO_BODY
    out["mach_lookup_ok"] = True
    return 0


# -- harness -------------------------------------------------------------------


def install_netbench(system) -> None:
    vfs = system.kernel.vfs
    vfs.makedirs("/data/netbench")
    vfs.makedirs("/data/netbench-ios")
    vfs.install_binary(
        ELF_PATH, elf_executable("netbench", bench_android, deps=["libc.so"])
    )
    vfs.install_binary(MACHO_PATH, macho_executable("netbench", bench_ios))


def run_netbench(
    fetches: int = DEFAULT_FETCHES,
    stream_kb: int = DEFAULT_STREAM_KB,
    storm_workers: int = DEFAULT_STORM_WORKERS,
    fault_plan=None,
) -> Dict[str, object]:
    """Boot one Cider machine with the supervised origin, run the Android
    build then the iOS build, and return the comparison document."""
    from ..cider.system import build_cider

    system = build_cider(with_httpd=True)
    if fault_plan is not None:
        system.machine.faults = fault_plan
    install_netbench(system)
    results: Dict[str, object] = {}
    for label, path in (("android", ELF_PATH), ("cider-ios", MACHO_PATH)):
        out: Dict[str, float] = {}
        params = {
            "out": out,
            "fetches": fetches,
            "stream_kb": stream_kb,
            "storm_workers": storm_workers,
        }
        code = system.run_program(path, [path, params])
        assert code == 0, f"{label} netbench exited {code}"
        results[label] = out
    net = system.machine.net
    results["packet_log_digest"] = net.log_digest()
    results["net"] = net.summary()
    results["virtual_ns"] = system.machine.clock.now_ns
    system.shutdown()
    return results


# -- two-machine world mode ----------------------------------------------------


def install_netbench_world(system) -> None:
    vfs = system.kernel.vfs
    vfs.makedirs("/data/netbench-world")
    vfs.install_binary(
        WORLD_MACHO_PATH, macho_executable("netbench", bench_world_ios)
    )


def build_world(durable: bool = False, flightrec_capacity=None):
    """A Cider client plus a vanilla-Android origin on one segment, both
    with observatories, causal tracers and flight recorders installed.
    Returns ``(client, origin)`` — drive them with
    :func:`repro.cider.system.run_world`."""
    from ..cider.system import build_cider, build_vanilla_android
    from ..net.http import start_httpd_android

    client = build_cider(durable=durable)
    origin = build_vanilla_android()
    # Give the origin its own address *before* its netstack first exists.
    origin.machine.net_host_ip = ORIGIN_NET_IP
    for system, node in ((client, "client"), (origin, "origin")):
        system.machine.install_observatory()
        system.machine.install_causal_tracer(node=node)
        system.machine.install_flight_recorder(flightrec_capacity)
    start_httpd_android(origin)
    origin.run_until_idle()  # let the origin reach its accept loop
    client.machine.net.connect_peer(origin.machine.net)
    client.machine.net.register_host(ORIGIN_HOST, ORIGIN_NET_IP)
    install_netbench_world(client)
    return client, origin


def run_netbench_world(
    fetches: int = DEFAULT_WORLD_FETCHES, durable: bool = False
) -> Dict[str, object]:
    """Run the two-machine fetch workload and assemble the causal trace."""
    from ..cider.system import run_world
    from ..obs.diff import assemble_trace

    client, origin = build_world(durable=durable)
    out: Dict[str, object] = {}
    params = {"out": out, "fetches": fetches}
    process = client.kernel.start_process(
        WORLD_MACHO_PATH, [WORLD_MACHO_PATH, params]
    )
    thread = process.main_thread().sim_thread
    result = run_world([client, origin], thread)
    code = result if isinstance(result, int) else 0
    assert code == 0, f"world netbench exited {code}"
    trace = assemble_trace(
        [client.machine, origin.machine], label="netbench-world"
    )
    results: Dict[str, object] = dict(out)
    results["trace"] = trace
    results["client_virtual_ns"] = client.machine.clock.now_ns_int
    results["origin_virtual_ns"] = origin.machine.clock.now_ns_int
    client.shutdown()
    origin.shutdown()
    return results


def world_main(argv: List[str]) -> None:
    from ..obs.diff import (
        critical_path,
        format_critical_path,
        save_trace,
        trace_ids,
    )

    trace_out = None
    if "--trace-out" in argv:
        trace_out = argv[argv.index("--trace-out") + 1]
    results = run_netbench_world()
    trace = results["trace"]
    print("netbench world — cider client, vanilla-android origin")
    for index, ps in enumerate(results["request_charged_ps"]):
        print(f"request {index}: client charged {ps} ps")
    print(f"client virtual ns: {results['client_virtual_ns']}")
    print(f"origin virtual ns: {results['origin_virtual_ns']}")
    print(f"traces: {' '.join(trace_ids(trace))}")
    print(format_critical_path(critical_path(trace)), end="")
    if trace_out is not None:
        save_trace(trace, trace_out)


def format_report(results: Dict[str, object]) -> str:
    """The byte-comparable single-machine netbench document."""
    android = results["android"]
    ios = results["cider-ios"]
    lines = ["netbench — same device, same origin, both personas"]
    lines.append(
        f"{'metric':<16}{'android':>14}{'cider-ios':>14}{'ios/android':>13}"
    )
    for key, unit in (
        ("fetch_ns", "ns"),
        ("fetch_p50_ns", "ns"),
        ("fetch_p95_ns", "ns"),
        ("stream_mb_s", "MB/s"),
        ("storm_ns", "ns"),
    ):
        a, i = android[key], ios[key]
        ratio = i / a if a else float("nan")
        lines.append(
            f"{key:<16}{a:>12.1f} {unit:<2}{i:>11.1f} {unit:<2}{ratio:>10.3f}x"
        )
    lines.append(f"packet log digest: {results['packet_log_digest']}")
    lines.append(json.dumps({"net": results["net"]}, sort_keys=True))
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    import hashlib
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    jobs = 1
    if "--jobs" in args:
        from ..sim.parallel import parse_jobs

        at = args.index("--jobs")
        try:
            jobs = parse_jobs(args[at + 1])
        except (IndexError, ValueError):
            print(
                "usage: python -m repro.workloads.netbench [--jobs N]",
                file=sys.stderr,
            )
            return 2
    if jobs <= 1:
        print(format_report(run_netbench()), end="")
        return 0
    # Determinism self-check: run ``jobs`` independent replicas of the
    # whole benchmark across fork-server workers.  Every replica must
    # render the byte-identical document.
    from ..sim.parallel import run_cases

    reports = run_cases(jobs, lambda _index: format_report(run_netbench()),
                        jobs=jobs)
    print(reports[0], end="")
    digests = sorted({
        hashlib.sha256(report.encode()).hexdigest() for report in reports
    })
    if len(digests) != 1:
        print(
            f"netbench: determinism FAILED: {len(digests)} distinct "
            f"documents across {jobs} replicas: {' '.join(digests)}",
            file=sys.stderr,
        )
        return 1
    print(f"netbench determinism: {jobs} replicas identical sha256 {digests[0]}")
    return 0


if __name__ == "__main__":
    import sys

    if "--world" in sys.argv[1:]:
        world_main(sys.argv[1:])
    else:
        raise SystemExit(main())
