"""Evaluation harness: regenerates the paper's figures.

Builds the four measured system configurations (paper §6):

* ``android``       — Linux binaries / Android apps on vanilla Android;
* ``cider_android`` — the same Linux binaries on a Cider kernel;
* ``cider_ios``     — the Mach-O build on the Cider kernel;
* ``ios``           — the Mach-O build on the iPad mini (XNU-native).

and produces per-metric results normalised to vanilla Android, which is
how Figures 5 and 6 are plotted.  ``float('nan')`` marks a measurement
that failed (the iPad's select at 250 fds); ``None`` marks an impossible
configuration (running ELF binaries on the iPad).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from ..cider.system import (
    System,
    build_cider,
    build_ipad_mini,
    build_vanilla_android,
)
from .lmbench import install_lmbench

CONFIGS = ("android", "cider_android", "cider_ios", "ios")

#: Figure 5 row order (groups 1-4).
FIG5_METRICS = [
    "int_mul",
    "int_div",
    "double_add",
    "double_mul",
    "bogomflops",
    "null_syscall",
    "read",
    "write",
    "open_close",
    "signal",
    "fork_exit",
    "fork_exec_android",
    "fork_exec_ios",
    "fork_sh_android",
    "fork_sh_ios",
    "pipe",
    "af_unix",
    "select_10",
    "select_100",
    "select_250",
    "file_0k",
    "file_10k",
]

#: Metrics impossible on vanilla Android are normalised against their
#: android-child counterpart (paper: "intentionally unfair").
_NORMALIZE_AGAINST = {
    "fork_exec_ios": "fork_exec_android",
    "fork_sh_ios": "fork_sh_android",
}


class FigureResult:
    """raw ns + normalised values for one figure."""

    def __init__(self, metrics: List[str]) -> None:
        self.metrics = list(metrics)
        self.raw: Dict[str, Dict[str, Optional[float]]] = {
            config: {} for config in CONFIGS
        }

    def record(self, config: str, metric: str, value: Optional[float]):
        self.raw[config][metric] = value

    def normalized(self) -> Dict[str, Dict[str, Optional[float]]]:
        base = self.raw["android"]
        table: Dict[str, Dict[str, Optional[float]]] = {}
        for metric in self.metrics:
            base_metric = _NORMALIZE_AGAINST.get(metric, metric)
            baseline = base.get(base_metric)
            row: Dict[str, Optional[float]] = {}
            for config in CONFIGS:
                value = self.raw[config].get(metric)
                if value is None or baseline in (None, 0):
                    row[config] = None
                elif isinstance(value, float) and math.isnan(value):
                    row[config] = float("nan")
                else:
                    row[config] = value / baseline
            table[metric] = row
        return table

    def format_table(self, title: str, higher_is_better: bool = False) -> str:
        lines = [title]
        direction = "higher" if higher_is_better else "lower"
        lines.append(
            f"(normalised to vanilla Android = 1.00; {direction} is better)"
        )
        header = f"{'metric':>20} " + " ".join(
            f"{config:>14}" for config in CONFIGS
        )
        lines.append(header)
        lines.append("-" * len(header))
        for metric, row in self.normalized().items():
            cells = []
            for config in CONFIGS:
                value = row[config]
                if value is None:
                    cells.append(f"{'n/a':>14}")
                elif isinstance(value, float) and math.isnan(value):
                    cells.append(f"{'FAILED':>14}")
                else:
                    cells.append(f"{value:>14.2f}")
            lines.append(f"{metric:>20} " + " ".join(cells))
        return "\n".join(lines)


# -- Figure 5: lmbench ---------------------------------------------------------------


def _run_lmbench_binary(
    system: System, path: str, out: Dict, iters: int, **extra
) -> None:
    params = {"out": out, "iters": iters, **extra}
    code = system.run_program(path, [path, params])
    if code != 0:
        raise RuntimeError(f"{path} exited with {code}")


def _collect_lmbench(
    system: System,
    binary_format: str,
    out: Dict[str, float],
    iters: int,
    android_hello: Optional[str],
    ios_hello: Optional[str],
    shell: str,
) -> None:
    paths = install_lmbench(system.kernel, binary_format)
    simple = [
        "ops",
        "null_syscall",
        "read",
        "write",
        "open_close",
        "signal",
        "fork_exit",
        "pipe",
        "af_unix",
        "select",
        "files",
    ]
    for name in simple:
        _run_lmbench_binary(system, paths[name], out, iters)
    variants = []
    if android_hello is not None:
        variants.append(("android", android_hello))
    if ios_hello is not None:
        variants.append(("ios", ios_hello))
    for tag, child in variants:
        sub: Dict[str, float] = {}
        _run_lmbench_binary(
            system, paths["fork_exec"], sub, iters, child=child
        )
        out[f"fork_exec_{tag}"] = sub["fork_exec"]
        sub = {}
        _run_lmbench_binary(
            system, paths["fork_sh"], sub, iters, child=child, shell=shell
        )
        out[f"fork_sh_{tag}"] = sub["fork_sh"]


class Fig5Runner:
    """Regenerates Figure 5 (microbenchmark latencies)."""

    def __init__(self, iters: int = 6) -> None:
        self.iters = iters

    def run(self) -> FigureResult:
        result = FigureResult(FIG5_METRICS)

        with build_vanilla_android() as system:
            out: Dict[str, float] = {}
            _collect_lmbench(
                system,
                "elf",
                out,
                self.iters,
                android_hello="/system/bin/hello",
                ios_hello=None,
                shell="/system/bin/sh",
            )
            self._store(result, "android", out)

        with build_cider() as system:
            out = {}
            _collect_lmbench(
                system,
                "elf",
                out,
                self.iters,
                android_hello="/system/bin/hello",
                ios_hello="/bin/hello-ios",
                shell="/system/bin/sh",
            )
            self._store(result, "cider_android", out)

        with build_cider() as system:
            out = {}
            _collect_lmbench(
                system,
                "macho",
                out,
                self.iters,
                android_hello="/system/bin/hello",
                ios_hello="/bin/hello-ios",
                shell="/system/bin/sh",
            )
            self._store(result, "cider_ios", out)

        with build_ipad_mini() as system:
            out = {}
            _collect_lmbench(
                system,
                "macho",
                out,
                self.iters,
                android_hello=None,
                ios_hello="/bin/hello-ios",
                shell="/bin/sh-ios",
            )
            self._store(result, "ios", out)
        return result

    @staticmethod
    def _store(result: FigureResult, config: str, out: Dict[str, float]):
        for metric in FIG5_METRICS:
            if metric in out:
                result.record(config, metric, out[metric])


def run_figure5(iters: int = 6) -> FigureResult:
    return Fig5Runner(iters).run()


# -- Figure 6: PassMark ------------------------------------------------------------


class Fig6Runner:
    """Regenerates Figure 6 (PassMark app throughput, ops/sec)."""

    def run(self) -> FigureResult:
        from .passmark import PASSMARK_TESTS, install_passmark

        result = FigureResult(PASSMARK_TESTS)

        def collect(system: System, which: str, config: str) -> None:
            path = install_passmark(system.kernel, which)
            out: Dict[str, float] = {}
            code = system.run_program(path, [path, {"out": out}])
            if code != 0:
                raise RuntimeError(f"passmark exited with {code} on {config}")
            for test, score in out.items():
                result.record(config, test, score)

        with build_vanilla_android() as system:
            collect(system, "android", "android")
        with build_cider() as system:
            collect(system, "android", "cider_android")
        with build_cider() as system:
            collect(system, "ios", "cider_ios")
        with build_ipad_mini() as system:
            collect(system, "ios", "ios")
        return result


def run_figure6() -> FigureResult:
    return Fig6Runner().run()
