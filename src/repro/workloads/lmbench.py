"""lmbench 3.0 microbenchmarks, rebuilt for the simulated libc ABI.

The paper compiled lmbench twice — "an ELF Linux binary version, and a
Mach-O iOS binary version, using the standard Linux GCC 4.4.1 and Xcode
4.2.1 compilers" (§6) — and ran four test categories: basic operations,
syscalls and signals, process creation, and local communication and file
operations.  The same source functions below are "compiled" into both
binary formats by :func:`lmbench_suite`; the compiler profile attached to
each image reproduces the toolchain differences (Xcode's integer divide).

Each test binary takes ``argv = [name, params]`` where ``params`` is a
dict carrying iteration counts and an ``out`` dict the binary writes its
measured latencies (ns/op) into — the simulation's stand-in for lmbench's
stdout parsing.
"""

from __future__ import annotations

from typing import Dict, List

from ..binfmt import BinaryImage, elf_executable, macho_executable
from ..hw.cpu import GCC_4_4_1, XCODE_4_2_1
from ..kernel.files import O_RDONLY, O_WRONLY
from ..kernel.process import UserContext
from ..kernel.signals import SIGUSR1
from ..compat.signals import XNU_SIGUSR1

DEFAULT_ITERS = 10

#: Paths the harness installs the two builds under.
ELF_DIR = "/data/lmbench"
MACHO_DIR = "/data/lmbench-ios"


def _params(argv: List[str]) -> Dict:
    return argv[1] if len(argv) > 1 and isinstance(argv[1], dict) else {}


def _report(argv: List[str], key: str, value: float) -> None:
    params = _params(argv)
    out = params.get("out")
    if isinstance(out, dict):
        out[key] = value


# -- group 1: basic CPU operations -------------------------------------------------


def bench_ops(ctx: UserContext, argv: List[str]) -> int:
    """lat_ops: integer multiply/divide, double add/multiply, bogomflops."""
    params = _params(argv)
    iters = params.get("iters", 200)
    watch = ctx.machine.stopwatch()
    for op_key, cost_name in (
        ("int_mul", "op_int_mul"),
        ("int_div", "op_int_div"),
        ("double_add", "op_double_add"),
        ("double_mul", "op_double_mul"),
    ):
        watch.restart()
        ctx.op(cost_name, iters)
        _report(argv, op_key, watch.elapsed_ns() / iters)
    # bogomflops: mul+add pipeline.
    watch.restart()
    ctx.op("op_double_mul", iters)
    ctx.op("op_double_add", iters)
    _report(argv, "bogomflops", watch.elapsed_ns() / iters)
    return 0


# -- group 2: syscalls and signals ----------------------------------------------------


def bench_null_syscall(ctx: UserContext, argv: List[str]) -> int:
    """lat_syscall null: getppid in a loop."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        libc.getppid()
    _report(argv, "null_syscall", watch.elapsed_ns() / iters)
    return 0


def bench_read(ctx: UserContext, argv: List[str]) -> int:
    """lat_syscall read: one byte from /dev/zero."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    fd = libc.open("/dev/zero", O_RDONLY)
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        libc.read(fd, 1)
    _report(argv, "read", watch.elapsed_ns() / iters)
    libc.close(fd)
    return 0


def bench_write(ctx: UserContext, argv: List[str]) -> int:
    """lat_syscall write: one byte to /dev/null."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    fd = libc.open("/dev/null", O_WRONLY)
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        libc.write(fd, b"x")
    _report(argv, "write", watch.elapsed_ns() / iters)
    libc.close(fd)
    return 0


def bench_open_close(ctx: UserContext, argv: List[str]) -> int:
    """lat_syscall open: open+close an existing file."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    fd = libc.creat("/tmp/lmbench.f")
    libc.close(fd)
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        fd = libc.open("/tmp/lmbench.f", O_RDONLY)
        libc.close(fd)
    _report(argv, "open_close", watch.elapsed_ns() / iters)
    libc.unlink("/tmp/lmbench.f")
    return 0


def bench_signal(ctx: UserContext, argv: List[str]) -> int:
    """lat_sig catch: install a handler and deliver to self."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    hits = []

    def handler(hctx, signum, info):
        hits.append(signum)

    # The source uses SIGUSR1; its number differs per platform headers.
    signum = XNU_SIGUSR1 if type(libc).__name__ == "IOSLibc" else SIGUSR1
    libc.signal(signum, handler)
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        libc.raise_(signum)
    _report(argv, "signal", watch.elapsed_ns() / iters)
    assert len(hits) == iters, f"lost signals: {len(hits)}/{iters}"
    return 0


# -- group 3: process creation ------------------------------------------------------------


def bench_fork_exit(ctx: UserContext, argv: List[str]) -> int:
    """lat_proc fork: fork a child that exits immediately."""
    iters = _params(argv).get("iters", 4)
    libc = ctx.libc
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        pid = libc.fork(lambda child_ctx: 0)
        libc.waitpid(pid)
    _report(argv, "fork_exit", watch.elapsed_ns() / iters)
    return 0


def bench_fork_exec(ctx: UserContext, argv: List[str]) -> int:
    """lat_proc exec: fork a child that execs hello-world.

    The child binary's path arrives via params["child"], selecting the
    Linux or the iOS hello world (the four Cider variants of §6.2).
    """
    params = _params(argv)
    iters = params.get("iters", 4)
    child_path = params.get("child", "/system/bin/hello")
    libc = ctx.libc
    watch = ctx.machine.stopwatch()
    for _ in range(iters):

        def child(child_ctx: UserContext) -> int:
            child_ctx.libc.execve(child_path, [child_path])
            return 127

        pid = libc.fork(child)
        libc.waitpid(pid)
    _report(argv, "fork_exec", watch.elapsed_ns() / iters)
    return 0


def bench_fork_sh(ctx: UserContext, argv: List[str]) -> int:
    """lat_proc shell: fork a shell that runs hello-world."""
    params = _params(argv)
    iters = params.get("iters", 4)
    child_path = params.get("child", "/system/bin/hello")
    shell_path = params.get("shell", "/system/bin/sh")
    libc = ctx.libc
    watch = ctx.machine.stopwatch()
    for _ in range(iters):

        def child(child_ctx: UserContext) -> int:
            child_ctx.libc.execve(
                shell_path, [shell_path, "-c", child_path]
            )
            return 127

        pid = libc.fork(child)
        libc.waitpid(pid)
    _report(argv, "fork_sh", watch.elapsed_ns() / iters)
    return 0


# -- group 4: local communication and file operations -----------------------------------------


def bench_pipe(ctx: UserContext, argv: List[str]) -> int:
    """lat_pipe: token round trip between parent and child."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    r1, w1 = libc.pipe()
    r2, w2 = libc.pipe()

    def child(child_ctx: UserContext) -> int:
        clibc = child_ctx.libc
        # Drop the inherited ends this side does not use, so the parent's
        # close of w1 produces EOF here (as lmbench's child does).
        clibc.close(w1)
        clibc.close(r2)
        while True:
            token = clibc.read(r1, 1)
            if token in (b"", -1):
                return 0
            clibc.write(w2, token)

    pid = libc.fork(child)
    # Warm-up round trips amortise child start-up out of the measurement
    # (lmbench runs thousands of iterations for the same reason).
    for _ in range(2):
        libc.write(w1, b"x")
        libc.read(r2, 1)
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        libc.write(w1, b"x")
        libc.read(r2, 1)
    # One-way latency is half the round trip, as lmbench reports it.
    _report(argv, "pipe", watch.elapsed_ns() / iters / 2)
    libc.close(w1)
    libc.waitpid(pid)
    return 0


def bench_unix_socket(ctx: UserContext, argv: List[str]) -> int:
    """lat_unix: AF_UNIX stream round trip."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    a, b = libc.socketpair()

    def child(child_ctx: UserContext) -> int:
        clibc = child_ctx.libc
        clibc.close(a)  # drop the inherited parent-side endpoint
        while True:
            token = clibc.read(b, 1)
            if token in (b"", -1):
                return 0
            clibc.write(b, token)

    pid = libc.fork(child)
    for _ in range(2):  # warm-up: see bench_pipe
        libc.write(a, b"x")
        libc.read(a, 1)
    watch = ctx.machine.stopwatch()
    for _ in range(iters):
        libc.write(a, b"x")
        libc.read(a, 1)
    _report(argv, "af_unix", watch.elapsed_ns() / iters / 2)
    libc.close(a)
    libc.waitpid(pid)
    return 0


def bench_select(ctx: UserContext, argv: List[str]) -> int:
    """lat_select: poll n pipe descriptors (n in {10, 100, 250})."""
    params = _params(argv)
    iters = params.get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    for nfds in params.get("fd_counts", (10, 100, 250)):
        fds = []
        while len(fds) < nfds:
            r, w = libc.pipe()
            fds.extend([r, w][: nfds - len(fds)])
        read_fds = fds[:nfds]
        watch = ctx.machine.stopwatch()
        failed = False
        for _ in range(iters):
            if libc.select(read_fds, [], 0) == -1:
                failed = True
                break
        if failed:
            # The iPad's select "simply failed to complete for 250 file
            # descriptors" (§6.2): report the failure as None.
            _report(argv, f"select_{nfds}", float("nan"))
        else:
            _report(argv, f"select_{nfds}", watch.elapsed_ns() / iters)
        for fd in fds:
            libc.close(fd)
    return 0


def bench_files(ctx: UserContext, argv: List[str]) -> int:
    """lat_fs: create and delete 0KB and 10KB files."""
    iters = _params(argv).get("iters", DEFAULT_ITERS)
    libc = ctx.libc
    for size_kb in (0, 10):
        payload = b"d" * (size_kb * 1024)
        watch = ctx.machine.stopwatch()
        for index in range(iters):
            path = f"/tmp/lat_fs_{size_kb}_{index}"
            fd = libc.creat(path)
            if payload:
                libc.write(fd, payload)
            libc.close(fd)
            libc.unlink(path)
        _report(argv, f"file_{size_kb}k", watch.elapsed_ns() / iters)
    return 0


#: test name -> entry function.
LMBENCH_TESTS = {
    "ops": bench_ops,
    "null_syscall": bench_null_syscall,
    "read": bench_read,
    "write": bench_write,
    "open_close": bench_open_close,
    "signal": bench_signal,
    "fork_exit": bench_fork_exit,
    "fork_exec": bench_fork_exec,
    "fork_sh": bench_fork_sh,
    "pipe": bench_pipe,
    "af_unix": bench_unix_socket,
    "select": bench_select,
    "files": bench_files,
}


def lmbench_suite(binary_format: str) -> Dict[str, BinaryImage]:
    """Compile the suite: ``binary_format`` is "elf" or "macho"."""
    suite: Dict[str, BinaryImage] = {}
    for name, entry in LMBENCH_TESTS.items():
        if binary_format == "elf":
            suite[name] = elf_executable(
                f"lat_{name}", entry, text_kb=96, compiler=GCC_4_4_1
            )
        else:
            suite[name] = macho_executable(
                f"lat_{name}", entry, text_kb=112, compiler=XCODE_4_2_1
            )
    return suite


def install_lmbench(kernel, binary_format: str) -> Dict[str, str]:
    """Install the suite; returns test name -> path."""
    base = ELF_DIR if binary_format == "elf" else MACHO_DIR
    kernel.vfs.makedirs(base)
    paths = {}
    for name, image in lmbench_suite(binary_format).items():
        path = f"{base}/lat_{name}"
        kernel.vfs.install_binary(path, image)
        paths[name] = path
    return paths
