"""Workloads: lmbench and PassMark reimplementations plus the harness."""
