"""Offline causal-trace analysis: assembly, critical paths, trace diff.

A *trace artifact* is the merge of every machine's
:class:`~repro.obs.causal.CausalTracer` output into one JSON-friendly
dict (``repro-trace-v1``): the participating machines, every closed
causal span (plus still-open spans from panicked machines, flagged
``aborted``), and the flow/inherit/follow edge events.  Artifacts are
pure data — save one with :func:`save_trace` and every analysis here
(and the ``python -m repro.obs.report`` CLI) can be re-run later without
re-running the simulation.

Two analyses matter for the paper's methodology:

* :func:`critical_path` — descend the span tree of one trace always
  taking the most expensive child, yielding the exact self/total
  picosecond breakdown of the request's latency plus a per-machine
  *translation* bucket (diplomacy calls, the XNU compatibility layer,
  foreign-persona traps) versus everything else.

* :func:`trace_diff` — align two artifacts' span trees by *path
  signature* (the machine-qualified ``subsystem:name`` chain from the
  root) and attribute every virtual-picosecond of difference to the
  paths that moved.  The rendered report is deterministic and
  byte-comparable, so CI can gate on "zero virtual-ns drift between two
  runs" by literal file comparison.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from ..sim.clock import PSEC_PER_NSEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine

TRACE_FORMAT = "repro-trace-v1"

#: Span subsystems counted as cross-persona translation overhead: the
#: diplomat arbitration path and the XNU compatibility layer (Mach IPC,
#: BSD veneers) that Cider adds on top of the domestic kernel.
_TRANSLATION_PREFIXES = ("diplomacy", "xnu.")


def _is_translation(subsystem: str, name: str) -> bool:
    if subsystem.startswith(_TRANSLATION_PREFIXES):
        return True
    # Foreign-persona traps are translated at the kernel boundary.
    return subsystem == "kernel.trap" and name == "xnu"


# ---------------------------------------------------------------------------
# Assembly and (de)serialisation.
# ---------------------------------------------------------------------------


def assemble_trace(
    machines: Iterable["Machine"], label: str = "run"
) -> Dict[str, object]:
    """Merge every machine's causal tracer into one trace artifact.

    Span rows sort by ``(trace, span)`` — ids are zero-padded counters,
    so lexicographic order is mint order and the merge is deterministic
    regardless of machine interleaving.  Events keep per-machine
    emission order, merged by ``(ts_ps, machine, index)``.
    """
    machine_rows: List[Dict[str, object]] = []
    spans: List[Dict[str, object]] = []
    events: List[Tuple[int, str, int, Dict[str, object]]] = []
    for machine in machines:
        obs = machine.obs
        tracer = obs.causal if obs is not None else None
        if tracer is None:
            raise ValueError(
                f"machine {machine.profile.name!r} has no causal tracer"
            )
        machine_rows.append(
            {
                "node": tracer.node,
                "profile": machine.profile.name,
                "charged_ps": machine.clock.charged_ps,
                "crashed": machine.crashed,
            }
        )
        spans.extend(tracer.spans)
        spans.extend(tracer.aborted_rows())
        for index, event in enumerate(tracer.events):
            events.append((int(event["ts_ps"]), tracer.node, index, event))
    machine_rows.sort(key=lambda row: row["node"])
    spans.sort(key=lambda row: (row["trace"], row["span"]))
    events.sort(key=lambda entry: entry[:3])
    return {
        "format": TRACE_FORMAT,
        "label": label,
        "machines": machine_rows,
        "spans": spans,
        "events": [entry[3] for entry in events],
    }


def save_trace(trace: Dict[str, object], path: str) -> None:
    """Stable (sorted-key) JSON dump: same trace ⇒ same bytes."""
    with open(path, "w") as fh:
        json.dump(trace, fh, sort_keys=True, indent=2)
        fh.write("\n")


def load_trace(path: str) -> Dict[str, object]:
    with open(path) as fh:
        trace = json.load(fh)
    if trace.get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a {TRACE_FORMAT} artifact")
    return trace


def trace_ids(trace: Dict[str, object]) -> List[str]:
    """Distinct trace ids in the artifact, sorted (mint order)."""
    return sorted({row["trace"] for row in trace["spans"]})


# ---------------------------------------------------------------------------
# Critical path.
# ---------------------------------------------------------------------------


def critical_path(
    trace: Dict[str, object], trace_id: Optional[str] = None
) -> Dict[str, object]:
    """The most-expensive root-to-leaf chain of one trace.

    At every node the walk descends into the child with the largest
    ``total_ps`` (ties broken by span id, i.e. mint order), so the sum
    of ``self_ps`` along the path plus the heaviest leaf's children is
    exactly the root's ``total_ps`` decomposition the paper plots.
    """
    if trace_id is None:
        ids = trace_ids(trace)
        if not ids:
            raise ValueError("trace artifact contains no causal spans")
        trace_id = ids[0]
    rows = [row for row in trace["spans"] if row["trace"] == trace_id]
    if not rows:
        raise ValueError(f"no spans for trace {trace_id!r}")
    by_id = {row["span"]: row for row in rows}
    children: Dict[object, List[Dict[str, object]]] = {}
    roots: List[Dict[str, object]] = []
    for row in rows:
        parent = row["parent"]
        if parent is None or parent not in by_id:
            roots.append(row)
        else:
            children.setdefault(parent, []).append(row)
    roots.sort(key=lambda row: row["span"])
    root = roots[0]

    path: List[Dict[str, object]] = []
    node: Optional[Dict[str, object]] = root
    while node is not None:
        path.append(
            {
                "machine": node["machine"],
                "span": node["span"],
                "name": f"{node['subsystem']}:{node['name']}"
                if node["name"]
                else node["subsystem"],
                "thread": node["thread"],
                "self_ps": node["self_ps"],
                "total_ps": node["total_ps"],
                "aborted": bool(node.get("aborted")),
            }
        )
        kids = children.get(node["span"], [])
        kids.sort(key=lambda row: (-int(row["total_ps"]), row["span"]))
        node = kids[0] if kids else None

    translation: Dict[str, Dict[str, int]] = {}
    for row in rows:
        bucket = translation.setdefault(
            row["machine"], {"translation_ps": 0, "other_ps": 0}
        )
        key = (
            "translation_ps"
            if _is_translation(str(row["subsystem"]), str(row["name"]))
            else "other_ps"
        )
        bucket[key] += int(row["self_ps"])

    return {
        "trace": trace_id,
        "root": root["span"],
        "root_total_ps": root["total_ps"],
        "path": path,
        "path_self_ps": sum(int(step["self_ps"]) for step in path),
        "translation": translation,
    }


def format_critical_path(cp: Dict[str, object]) -> str:
    """Deterministic text rendering of a :func:`critical_path` result."""
    lines: List[str] = []
    lines.append(f"# critical path: trace {cp['trace']}")
    lines.append(
        f"# root total {cp['root_total_ps']} ps "
        f"({int(cp['root_total_ps']) / PSEC_PER_NSEC:.0f} ns)"
    )
    lines.append(f"{'SELF ps':>14} {'TOTAL ps':>14}  MACHINE  SPAN")
    for depth, step in enumerate(cp["path"]):
        marker = " [aborted]" if step["aborted"] else ""
        lines.append(
            f"{step['self_ps']:>14} {step['total_ps']:>14}  "
            f"{step['machine']:<8} {'  ' * depth}{step['name']}{marker}"
        )
    lines.append(f"# path self sum: {cp['path_self_ps']} ps")
    translation = cp["translation"]
    for machine in sorted(translation):
        bucket = translation[machine]
        total = bucket["translation_ps"] + bucket["other_ps"]
        pct = 100.0 * bucket["translation_ps"] / total if total else 0.0
        lines.append(
            f"# {machine}: translation {bucket['translation_ps']} ps / "
            f"{total} ps self ({pct:.2f}%)"
        )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Trace diff.
# ---------------------------------------------------------------------------


def _path_signatures(trace: Dict[str, object]) -> Dict[str, List[int]]:
    """Aggregate spans by machine-qualified root-to-span name chain.

    Returns ``signature -> [count, self_ps, total_ps]``.  Summing
    ``self_ps`` over all signatures of a trace equals the root's
    ``total_ps``, so signature-level self deltas attribute a whole-trace
    delta exactly.
    """
    by_id = {row["span"]: row for row in trace["spans"]}
    signatures: Dict[str, List[int]] = {}

    def segment(row: Dict[str, object]) -> str:
        name = f"{row['subsystem']}:{row['name']}" if row["name"] else row["subsystem"]
        return f"{row['machine']}/{name}"

    cache: Dict[object, str] = {}

    def signature(row: Dict[str, object]) -> str:
        span_id = row["span"]
        if span_id in cache:
            return cache[span_id]
        parent = row["parent"]
        if parent is not None and parent in by_id:
            sig = signature(by_id[parent]) + " > " + segment(row)
        else:
            sig = segment(row)
        cache[span_id] = sig
        return sig

    for row in trace["spans"]:
        entry = signatures.setdefault(signature(row), [0, 0, 0])
        entry[0] += 1
        entry[1] += int(row["self_ps"])
        entry[2] += int(row["total_ps"])
    return signatures


def trace_diff(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    """Attribute the virtual-time delta between two artifacts to span-tree
    paths.  ``drift_ps`` is the sum of absolute self-time deltas (plus
    everything on unmatched paths), so it is zero iff the two runs spent
    identical virtual time everywhere."""
    sig_a = _path_signatures(a)
    sig_b = _path_signatures(b)
    rows: List[Dict[str, object]] = []
    drift_ps = 0
    for sig in sorted(set(sig_a) | set(sig_b)):
        count_a, self_a, total_a = sig_a.get(sig, [0, 0, 0])
        count_b, self_b, total_b = sig_b.get(sig, [0, 0, 0])
        delta_self = self_b - self_a
        if count_a == count_b and delta_self == 0 and total_a == total_b:
            continue
        drift_ps += abs(delta_self)
        rows.append(
            {
                "path": sig,
                "count_a": count_a,
                "count_b": count_b,
                "self_ps_a": self_a,
                "self_ps_b": self_b,
                "delta_self_ps": delta_self,
            }
        )
    rows.sort(key=lambda row: (-abs(int(row["delta_self_ps"])), row["path"]))
    return {
        "label_a": a.get("label", "a"),
        "label_b": b.get("label", "b"),
        "paths_a": len(sig_a),
        "paths_b": len(sig_b),
        "changed": rows,
        "drift_ps": drift_ps,
    }


def format_diff_report(diff: Dict[str, object]) -> str:
    """Byte-comparable text report for a :func:`trace_diff` result.

    The trailing sha256 digest covers every preceding byte, so CI can
    compare reports (or just digests) across runs and against the
    committed baseline.
    """
    lines: List[str] = []
    lines.append("# trace diff report (repro.obs.diff)")
    lines.append(f"# a: {diff['label_a']} ({diff['paths_a']} span paths)")
    lines.append(f"# b: {diff['label_b']} ({diff['paths_b']} span paths)")
    lines.append(f"drift_ps {diff['drift_ps']}")
    lines.append(f"changed_paths {len(diff['changed'])}")
    for row in diff["changed"]:
        lines.append(
            f"{row['delta_self_ps']:+d} ps "
            f"(a self {row['self_ps_a']} x{row['count_a']}, "
            f"b self {row['self_ps_b']} x{row['count_b']}) {row['path']}"
        )
    body = "\n".join(lines) + "\n"
    digest = hashlib.sha256(body.encode()).hexdigest()
    return body + f"# sha256 {digest}\n"
