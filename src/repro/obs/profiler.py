"""The virtual-time profiler.

Attributes every ``VirtualClock.charge`` to the innermost open span of
the *currently running* simulated thread (or to the controller context
when no simulated thread holds the token), and aggregates finished spans
into two deterministic tables:

* a **per-subsystem table** — subsystem → (calls, self-ps, total-ps) —
  which answers the paper's §6 question "where does the overhead come
  from" with hard numbers (self time sums exactly to the clock's charged
  total, see :meth:`Profiler.conservation_check`);
* a **flame tree** keyed by the span path (root subsystem → … → leaf),
  rendered as a ``perf report``-style folded table.

All accounting is exact integer picoseconds; nothing here ever charges
the clock.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim.clock import PSEC_PER_NSEC
from .spans import Span

#: Pseudo-subsystem collecting charges made with no span open.
UNATTRIBUTED = "(unattributed)"


class SubsystemStat:
    """Aggregate of every finished span of one subsystem label."""

    __slots__ = ("subsystem", "calls", "self_ps", "total_ps")

    def __init__(self, subsystem: str) -> None:
        self.subsystem = subsystem
        self.calls = 0
        self.self_ps = 0
        self.total_ps = 0

    @property
    def self_ns(self) -> float:
        return self.self_ps / PSEC_PER_NSEC

    @property
    def total_ns(self) -> float:
        return self.total_ps / PSEC_PER_NSEC

    def __repr__(self) -> str:
        return (
            f"<SubsystemStat {self.subsystem} calls={self.calls} "
            f"self={self.self_ns:.0f}ns total={self.total_ns:.0f}ns>"
        )


class FlameNode:
    """One node of the span-path tree."""

    __slots__ = ("label", "calls", "self_ps", "total_ps", "children")

    def __init__(self, label: str) -> None:
        self.label = label
        self.calls = 0
        self.self_ps = 0
        self.total_ps = 0
        self.children: Dict[str, "FlameNode"] = {}

    def child(self, label: str) -> "FlameNode":
        node = self.children.get(label)
        if node is None:
            node = FlameNode(label)
            self.children[label] = node
        return node


class Profiler:
    """Per-thread span stacks plus charge attribution and aggregation."""

    def __init__(self) -> None:
        #: Returns an opaque, hashable "current execution context" token —
        #: wired by the observatory to ``scheduler._current`` so span
        #: stacks follow the deterministic scheduler's token holder.
        self.current_context: Callable[[], object] = lambda: None
        #: Maps a context to (tid:int, thread_name:str) for exporters.
        self.context_identity: Callable[[object], Tuple[int, str]] = (
            lambda ctx: (0, "controller")
        )
        #: Called with each finished span (the observatory records trace
        #: events and latency histograms from it).
        self.on_span_closed: Optional[Callable[[Span], None]] = None
        self._stacks: Dict[object, List[Span]] = {}
        self._subsystems: Dict[str, SubsystemStat] = {}
        self._flame_root = FlameNode("(root)")
        #: Exact totals (integer ps).
        self.unattributed_ps = 0
        self.observed_ps = 0

    # -- span lifecycle -----------------------------------------------------

    def enter_span(
        self,
        subsystem: str,
        name: str,
        attrs: Optional[Dict[str, object]],
        now_ps: int,
    ) -> Span:
        context = self.current_context()
        stack = self._stacks.get(context)
        if stack is None:
            stack = []
            self._stacks[context] = stack
        parent = stack[-1] if stack else None
        tid, thread_name = self.context_identity(context)
        span = Span(
            subsystem,
            name,
            attrs,
            tid,
            thread_name,
            depth=len(stack),
            start_ps=now_ps,
            parent=parent,
        )
        stack.append(span)
        return span

    def exit_span(self, span: Span, now_ps: int) -> None:
        """Close ``span``.  Tolerates unwinding: if inner spans are still
        open above it (an exception skipped their normal close), they are
        closed first so no span ever leaks open."""
        context = self.current_context()
        stack = self._stacks.get(context)
        if stack is None or span not in stack:
            # Closed from a different context than it was opened in (a
            # killed thread's stack, for instance) — locate it anywhere.
            for candidate_stack in self._stacks.values():
                if span in candidate_stack:
                    stack = candidate_stack
                    break
            else:
                return  # already closed (idempotent)
        while stack:
            top = stack.pop()
            self._finish(top, now_ps)
            if top is span:
                break

    def _finish(self, span: Span, now_ps: int) -> None:
        span.end_ps = now_ps
        if span.parent is not None and not span.parent.closed:
            span.parent.child_ps += span.total_ps
        # Per-subsystem aggregate.
        stat = self._subsystems.get(span.subsystem)
        if stat is None:
            stat = SubsystemStat(span.subsystem)
            self._subsystems[span.subsystem] = stat
        stat.calls += 1
        stat.self_ps += span.self_ps
        stat.total_ps += span.total_ps
        # Flame tree along the subsystem path.
        node = self._flame_root
        for label in span.path():
            node = node.child(label)
        node.calls += 1
        node.self_ps += span.self_ps
        node.total_ps += span.total_ps
        if self.on_span_closed is not None:
            self.on_span_closed(span)

    # -- charge attribution (the clock's hook) ------------------------------

    def on_charge(self, ps: int) -> None:
        """Every ``clock.charge`` lands here (exact integer ps)."""
        self.observed_ps += ps
        stack = self._stacks.get(self.current_context())
        if stack:
            stack[-1].self_ps += ps
        else:
            self.unattributed_ps += ps

    # -- tables -------------------------------------------------------------

    def subsystem_table(self) -> List[SubsystemStat]:
        """Per-subsystem stats, heaviest self-time first (ties by name)."""
        return sorted(
            self._subsystems.values(),
            key=lambda s: (-s.self_ps, s.subsystem),
        )

    def flame_root(self) -> FlameNode:
        return self._flame_root

    def flame_rows(self) -> List[Tuple[str, int, int, int]]:
        """Folded flame table rows ``(path, calls, self_ps, total_ps)``,
        depth-first, children sorted by label (deterministic)."""
        rows: List[Tuple[str, int, int, int]] = []

        def visit(node: FlameNode, prefix: str) -> None:
            for label in sorted(node.children):
                child = node.children[label]
                path = f"{prefix};{label}" if prefix else label
                rows.append((path, child.calls, child.self_ps, child.total_ps))
                visit(child, path)

        visit(self._flame_root, "")
        return rows

    # -- open-span accounting (leak detection) ------------------------------

    def open_spans(self) -> List[Span]:
        """Every span still open, across all thread stacks."""
        result: List[Span] = []
        for stack in self._stacks.values():
            result.extend(stack)
        return result

    def open_span_count(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    def open_self_ps(self) -> int:
        return sum(span.self_ps for span in self.open_spans())

    # -- conservation -------------------------------------------------------

    def attributed_ps(self) -> int:
        """Self-ps over all *closed* spans plus unattributed charges plus
        self-ps of spans still open.  By construction this equals
        :attr:`observed_ps` — every charged picosecond lands in exactly
        one bucket."""
        closed = sum(stat.self_ps for stat in self._subsystems.values())
        return closed + self.unattributed_ps + self.open_self_ps()

    def conservation_check(self) -> bool:
        """True iff every observed picosecond is attributed exactly once."""
        return self.attributed_ps() == self.observed_ps
