"""Dapper-style causal tracing across threads, personas and machines.

A :class:`CausalTracer` rides on the :class:`~repro.obs.observatory.
Observatory` (``obs.causal``) and gives every span opened inside an
active *trace* a ``trace_id`` / ``span_id`` / ``parent_span_id``
identity.  Context lives per simulated thread and crosses every
propagation boundary the kernel has:

* **fork / posix_spawn** — the child thread inherits the parent's
  context (:meth:`CausalTracer.inherit`);
* **signal delivery** — queued :class:`~repro.kernel.signals.SigInfo`
  carries the sender's context, adopted on delivery;
* **Mach IPC** — messages carry the sender's context through the
  :class:`~repro.xnu.api.XNUKernelAPI` ``causal_carrier`` /
  ``causal_adopt`` hooks (the duct-tape layer binds them; the Mach zone
  never touches Linux types);
* **unix-domain and INET sockets** — stream and datagram payloads carry
  the writer's context in packet *metadata*, so it crosses the virtual
  NIC to another machine without charging a single picosecond.

Carriers are plain tuples ``(trace_id, span_id, flow_id)``.  Every hand
of a carrier records a ``flow.send`` event and every adoption a
``flow.recv`` event — the exporter turns these into Chrome flow arrows
(``ph: "s"``/``"f"``).  Respawns of supervised services are linked with
weaker ``follow`` edges (Dapper's *follows-from*): the respawn is caused
by the request that killed the service, but is not part of it.

Adoption is *sticky but deferential*: a thread with no context (or one
it merely adopted earlier) takes the carrier's context; a thread inside
its own root trace — e.g. the client reading the response its own
request produced — keeps its context and only the flow edge is
recorded, so request/response loops never re-parent the originator.

Everything is deterministic: ids are zero-padded per-node counters
(``client-t00001``, ``client-s00042``), never randomness or wall time.
Like every other observability surface, the tracer exists only when
installed — all instrumentation sites hide behind the ``machine.obs is
None`` one-attribute test, keeping the zero-cost-when-off invariant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine
    from .spans import Span

#: What crosses a boundary: (trace_id, span_id, flow_id).
Carrier = Tuple[str, str, str]


class CausalContext:
    """The causal identity of one simulated thread."""

    __slots__ = ("trace_id", "span_id", "adopted")

    def __init__(
        self, trace_id: str, span_id: Optional[str], adopted: bool = False
    ) -> None:
        self.trace_id = trace_id
        #: The innermost open causal span on this thread (the parent of
        #: the next span entered).  ``None`` right after ``begin_trace``:
        #: the next span becomes the trace root.
        self.span_id = span_id
        #: Adopted contexts yield to fresh carriers (service loops serve
        #: one request after another); root contexts never do.
        self.adopted = adopted


class CausalTracer:
    """Per-machine causal-context manager and trace recorder."""

    def __init__(self, machine: "Machine", node: Optional[str] = None) -> None:
        self.machine = machine
        #: Node name qualifying every id this tracer mints — distinct per
        #: machine so a cross-machine trace merge needs no renumbering.
        self.node = node if node is not None else machine.profile.name
        self._trace_seq = 0
        self._span_seq = 0
        self._flow_seq = 0
        #: Per-SimThread context (keyed by the thread object itself).
        self.contexts: Dict[object, CausalContext] = {}
        #: Closed causal spans, in close order (deterministic).
        self.spans: List[Dict[str, object]] = []
        #: Flow / trace / follow events, in emission order.
        self.events: List[Dict[str, object]] = []
        #: The most recent trace id any event on this machine touched —
        #: what respawn follow-edges attach to when the respawning
        #: supervisor itself has no context.
        self.last_trace_id: Optional[str] = None

    # -- id minting (counters only: deterministic and merge-safe) ----------

    def _next_trace(self) -> str:
        self._trace_seq += 1
        return f"{self.node}-t{self._trace_seq:05d}"

    def _next_span(self) -> str:
        self._span_seq += 1
        return f"{self.node}-s{self._span_seq:05d}"

    def _next_flow(self) -> str:
        self._flow_seq += 1
        return f"{self.node}-f{self._flow_seq:05d}"

    # -- current-thread plumbing -------------------------------------------

    def _current_thread(self) -> object:
        return self.machine.scheduler._current

    def current(self) -> Optional[CausalContext]:
        return self.contexts.get(self._current_thread())

    def _now_ps(self) -> int:
        return self.machine.clock.now_ps

    def _thread_label(self) -> str:
        return str(getattr(self._current_thread(), "name", "controller"))

    def _event(self, kind: str, trace_id: str, **fields: object) -> None:
        self.last_trace_id = trace_id
        record: Dict[str, object] = {
            "kind": kind,
            "ts_ps": self._now_ps(),
            "machine": self.node,
            "trace": trace_id,
            "thread": self._thread_label(),
            "tid": int(getattr(self._current_thread(), "sid", 0)),
        }
        record.update(fields)
        self.events.append(record)
        rec = self.machine.flightrec
        if rec is not None:
            detail = " ".join(
                f"{key}={record[key]}"
                for key in ("trace", "span", "flow", "name")
                if record.get(key) is not None
            )
            rec.record(record["ts_ps"], kind, detail)

    # -- trace lifecycle ----------------------------------------------------

    def begin_trace(self, name: str) -> str:
        """Open a new trace rooted at the current thread.  The next span
        this thread enters becomes the trace's root span."""
        trace_id = self._next_trace()
        self.contexts[self._current_thread()] = CausalContext(trace_id, None)
        self._event("trace.begin", trace_id, name=name)
        return trace_id

    def end_trace(self) -> None:
        """Close the current thread's trace and drop its context."""
        ctx = self.contexts.pop(self._current_thread(), None)
        if ctx is not None:
            self._event("trace.end", ctx.trace_id)

    # -- carriers: what crosses a boundary ----------------------------------

    def carrier(self) -> Optional[Carrier]:
        """Snapshot the current context for injection into a message,
        packet or siginfo.  Records the ``flow.send`` half of the edge.
        Returns ``None`` (inject nothing) outside any trace."""
        ctx = self.current()
        if ctx is None:
            return None
        flow_id = self._next_flow()
        self._event("flow.send", ctx.trace_id, span=ctx.span_id, flow=flow_id)
        return (ctx.trace_id, ctx.span_id, flow_id)

    def adopt(self, carrier: Optional[Carrier]) -> None:
        """Land a carrier on the current thread: record the ``flow.recv``
        edge and — unless this thread owns a root context — adopt the
        carrier's context so subsequent spans parent under the sender."""
        if carrier is None:
            return
        trace_id, span_id, flow_id = carrier
        self._event("flow.recv", trace_id, span=span_id, flow=flow_id)
        thread = self._current_thread()
        ctx = self.contexts.get(thread)
        if ctx is None or ctx.adopted:
            self.contexts[thread] = CausalContext(
                trace_id, span_id, adopted=True
            )

    def inherit(self, parent_thread: object, child_thread: object) -> None:
        """fork/posix_spawn: the child starts inside the parent's trace."""
        ctx = self.contexts.get(parent_thread)
        if ctx is None:
            return
        self.contexts[child_thread] = CausalContext(
            ctx.trace_id, ctx.span_id, adopted=True
        )
        self._event(
            "inherit",
            ctx.trace_id,
            span=ctx.span_id,
            name=str(getattr(child_thread, "name", "?")),
        )

    def follow(self, name: str) -> None:
        """A follows-from edge: a supervised-service respawn caused by —
        but not part of — a trace.  Attaches to the current context if
        the respawner has one, else to the machine's last seen trace."""
        ctx = self.current()
        trace_id = ctx.trace_id if ctx is not None else self.last_trace_id
        if trace_id is None:
            return
        self._event(
            "follow",
            trace_id,
            span=ctx.span_id if ctx is not None else None,
            name=name,
        )

    # -- observatory hooks (every span enter/close when installed) ---------

    def on_enter(self, span: "Span") -> None:
        ctx = self.current()
        if ctx is None:
            return
        span.trace_id = ctx.trace_id
        span.span_id = self._next_span()
        span.parent_span_id = ctx.span_id
        ctx.span_id = span.span_id
        rec = self.machine.flightrec
        if rec is not None:
            rec.record(
                span.start_ps,
                "span.enter",
                f"trace={span.trace_id} span={span.span_id} "
                f"{span.subsystem}:{span.name}",
            )

    def on_close(self, span: "Span") -> None:
        if span.span_id is None:
            return
        self.last_trace_id = span.trace_id
        self.spans.append(self._row(span))
        # Restore the enclosing span as the thread's innermost: usually
        # the closer is the owner, but tolerant unwinding may close spans
        # for other threads — scan the (tiny) context table then.
        ctx = self.current()
        if ctx is None or ctx.span_id != span.span_id:
            ctx = None
            for candidate in self.contexts.values():
                if candidate.span_id == span.span_id:
                    ctx = candidate
                    break
        if ctx is not None:
            ctx.span_id = span.parent_span_id
        rec = self.machine.flightrec
        if rec is not None:
            rec.record(
                span.end_ps or 0,
                "span.close",
                f"trace={span.trace_id} span={span.span_id} "
                f"{span.subsystem}:{span.name} total_ps={span.total_ps}",
            )

    def _row(self, span: "Span", aborted: bool = False) -> Dict[str, object]:
        row: Dict[str, object] = {
            "machine": self.node,
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_span_id,
            "subsystem": span.subsystem,
            "name": span.name,
            "tid": span.tid,
            "thread": span.thread_name,
            "start_ps": span.start_ps,
            "end_ps": span.end_ps if span.end_ps is not None else self._now_ps(),
            "self_ps": span.self_ps,
            "total_ps": span.self_ps + span.child_ps,
        }
        if aborted:
            row["aborted"] = True
        return row

    def aborted_rows(self) -> List[Dict[str, object]]:
        """Rows for causal spans still open — a panicked machine never
        closes them; the trace assembler includes them flagged
        ``aborted`` with ``end_ps`` at the time of export."""
        obs = self.machine.obs
        if obs is None:
            return []
        rows = []
        for span in obs.profiler.open_spans():
            if span.span_id is not None:
                rows.append(self._row(span, aborted=True))
        rows.sort(key=lambda r: (r["trace"], r["span"]))
        return rows
