"""Machine-readable run summaries for experiments and benchmarks.

``run_summary`` collapses a machine's clock, metrics, and profile into
one JSON-serialisable dict; EXPERIMENTS-style scripts and the CI
determinism gate call it so that "the telemetry itself is deterministic"
is an enforced property, not an aspiration: two same-seed runs must
produce byte-identical summary JSON.

The module is also a CLI over *saved* trace artifacts
(:mod:`repro.obs.diff` ``repro-trace-v1`` files) — every report can be
regenerated offline without re-running the simulation::

    python -m repro.obs.report perf-report trace.json
    python -m repro.obs.report run-summary trace.json
    python -m repro.obs.report diff a.json b.json --fail-on-drift
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim.clock import PSEC_PER_NSEC
from .observatory import Observatory
from .profiler import UNATTRIBUTED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine


def run_summary(
    machine: "Machine",
    obs: Optional[Observatory] = None,
    label: str = "run",
) -> Dict[str, object]:
    """One deterministic dict describing a finished run."""
    obs = obs if obs is not None else machine.obs
    clock = machine.clock
    summary: Dict[str, object] = {
        "label": label,
        "machine": machine.profile.name,
        "seed": machine.profile.seed,
        "clock": {
            "now_ns": clock.now_ns_int,
            "charged_ps": clock.charged_ps,
        },
    }
    if obs is None:
        return summary
    profiler = obs.profiler
    profile_rows = [
        {
            "subsystem": stat.subsystem,
            "calls": stat.calls,
            "self_ps": stat.self_ps,
            "total_ps": stat.total_ps,
        }
        for stat in profiler.subsystem_table()
    ]
    if profiler.unattributed_ps:
        profile_rows.append(
            {
                "subsystem": UNATTRIBUTED,
                "calls": 0,
                "self_ps": profiler.unattributed_ps,
                "total_ps": profiler.unattributed_ps,
            }
        )
    summary["profile"] = profile_rows
    summary["profiled_ns"] = obs.profiled_ps() / PSEC_PER_NSEC
    summary["conservation_ok"] = profiler.conservation_check()
    summary["open_spans"] = profiler.open_span_count()
    summary["metrics"] = obs.metrics.snapshot()
    summary["span_events"] = len(obs.span_events)
    summary["dropped_span_events"] = obs.dropped_span_events
    return summary


def write_summary(summary: Dict[str, object], path: str) -> None:
    """Dump a summary as stable (sorted-key, fixed-separator) JSON."""
    with open(path, "w") as fh:
        json.dump(summary, fh, sort_keys=True, indent=2)
        fh.write("\n")


def format_summary(summary: Dict[str, object]) -> str:
    """The same content as a stable string (for stdout diffing in CI)."""
    return json.dumps(summary, sort_keys=True, indent=2)


# ---------------------------------------------------------------------------
# CLI over saved trace artifacts (no simulation required).
# ---------------------------------------------------------------------------


def artifact_summary(trace: Dict[str, object]) -> Dict[str, object]:
    """A deterministic summary of a saved ``repro-trace-v1`` artifact."""
    from .diff import trace_ids

    subsystems: Dict[str, Dict[str, int]] = {}
    aborted = 0
    for row in trace["spans"]:
        stat = subsystems.setdefault(
            str(row["subsystem"]), {"calls": 0, "self_ps": 0, "total_ps": 0}
        )
        stat["calls"] += 1
        stat["self_ps"] += int(row["self_ps"])
        stat["total_ps"] += int(row["total_ps"])
        if row.get("aborted"):
            aborted += 1
    return {
        "label": trace.get("label", "run"),
        "machines": trace["machines"],
        "traces": trace_ids(trace),
        "spans": len(trace["spans"]),
        "aborted_spans": aborted,
        "events": len(trace["events"]),
        "subsystems": subsystems,
    }


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from .diff import critical_path, format_critical_path, load_trace, trace_ids

    trace = load_trace(args.trace)
    ids = [args.trace_id] if args.trace_id else trace_ids(trace)
    if not ids:
        sys.stdout.write("# no causal traces in artifact\n")
        return 0
    for trace_id in ids:
        sys.stdout.write(format_critical_path(critical_path(trace, trace_id)))
    return 0


def _cmd_run_summary(args: argparse.Namespace) -> int:
    from .diff import load_trace

    summary = artifact_summary(load_trace(args.trace))
    sys.stdout.write(format_summary(summary) + "\n")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .diff import format_diff_report, load_trace, trace_diff

    diff = trace_diff(load_trace(args.a), load_trace(args.b))
    sys.stdout.write(format_diff_report(diff))
    if args.fail_on_drift and diff["drift_ps"] > 0:
        sys.stderr.write(f"drift detected: {diff['drift_ps']} ps\n")
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Regenerate reports from saved trace artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    perf = commands.add_parser(
        "perf-report", help="critical-path breakdown of each causal trace"
    )
    perf.add_argument("trace", help="repro-trace-v1 JSON artifact")
    perf.add_argument(
        "--trace-id", default=None, help="restrict to one trace id"
    )
    perf.set_defaults(func=_cmd_perf_report)

    summary = commands.add_parser(
        "run-summary", help="machines, traces and subsystem totals"
    )
    summary.add_argument("trace", help="repro-trace-v1 JSON artifact")
    summary.set_defaults(func=_cmd_run_summary)

    diff = commands.add_parser(
        "diff", help="attribute virtual-time drift between two artifacts"
    )
    diff.add_argument("a", help="baseline artifact")
    diff.add_argument("b", help="candidate artifact")
    diff.add_argument(
        "--fail-on-drift",
        action="store_true",
        help="exit 1 if any virtual-ps drift is attributed",
    )
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
