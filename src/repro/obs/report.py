"""Machine-readable run summaries for experiments and benchmarks.

``run_summary`` collapses a machine's clock, metrics, and profile into
one JSON-serialisable dict; EXPERIMENTS-style scripts and the CI
determinism gate call it so that "the telemetry itself is deterministic"
is an enforced property, not an aspiration: two same-seed runs must
produce byte-identical summary JSON.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Optional

from ..sim.clock import PSEC_PER_NSEC
from .observatory import Observatory
from .profiler import UNATTRIBUTED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine


def run_summary(
    machine: "Machine",
    obs: Optional[Observatory] = None,
    label: str = "run",
) -> Dict[str, object]:
    """One deterministic dict describing a finished run."""
    obs = obs if obs is not None else machine.obs
    clock = machine.clock
    summary: Dict[str, object] = {
        "label": label,
        "machine": machine.profile.name,
        "seed": machine.profile.seed,
        "clock": {
            "now_ns": clock.now_ns_int,
            "charged_ps": clock.charged_ps,
        },
    }
    if obs is None:
        return summary
    profiler = obs.profiler
    profile_rows = [
        {
            "subsystem": stat.subsystem,
            "calls": stat.calls,
            "self_ps": stat.self_ps,
            "total_ps": stat.total_ps,
        }
        for stat in profiler.subsystem_table()
    ]
    if profiler.unattributed_ps:
        profile_rows.append(
            {
                "subsystem": UNATTRIBUTED,
                "calls": 0,
                "self_ps": profiler.unattributed_ps,
                "total_ps": profiler.unattributed_ps,
            }
        )
    summary["profile"] = profile_rows
    summary["profiled_ns"] = obs.profiled_ps() / PSEC_PER_NSEC
    summary["conservation_ok"] = profiler.conservation_check()
    summary["open_spans"] = profiler.open_span_count()
    summary["metrics"] = obs.metrics.snapshot()
    summary["span_events"] = len(obs.span_events)
    summary["dropped_span_events"] = obs.dropped_span_events
    return summary


def write_summary(summary: Dict[str, object], path: str) -> None:
    """Dump a summary as stable (sorted-key, fixed-separator) JSON."""
    with open(path, "w") as fh:
        json.dump(summary, fh, sort_keys=True, indent=2)
        fh.write("\n")


def format_summary(summary: Dict[str, object]) -> str:
    """The same content as a stable string (for stdout diffing in CI)."""
    return json.dumps(summary, sort_keys=True, indent=2)
