"""Hierarchical spans over virtual time.

A :class:`Span` is one timed region of simulated work — a syscall, a
persona switch, a diplomatic call, a dyld walk, a Mach message send.
Spans are carried **per simulated thread** (each thread of the
deterministic scheduler owns its own stack), so a syscall span cleanly
nests the persona-switch / diplomat / VFS child spans opened underneath
it, even while other threads run and charge time in between: virtual-time
attribution follows the token, not the wall clock.

Two costs are recorded per span, both in exact integer picoseconds:

* ``self_ps`` — charges made while this span was the *innermost* open
  span on its thread (exclusive time);
* ``total_ps`` — ``self_ps`` plus the total of every completed child
  (inclusive time).

Opening or closing a span charges **zero** virtual time: the profiler is
an observer of ``clock.charge``, never a participant.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim.clock import PSEC_PER_NSEC


class Span:
    """One open (or finished) timed region on a simulated thread."""

    __slots__ = (
        "subsystem",
        "name",
        "attrs",
        "tid",
        "thread_name",
        "depth",
        "start_ps",
        "end_ps",
        "self_ps",
        "child_ps",
        "parent",
        "trace_id",
        "span_id",
        "parent_span_id",
    )

    def __init__(
        self,
        subsystem: str,
        name: str,
        attrs: Optional[Dict[str, object]],
        tid: int,
        thread_name: str,
        depth: int,
        start_ps: int,
        parent: Optional["Span"],
    ) -> None:
        self.subsystem = subsystem
        self.name = name
        self.attrs = attrs
        self.tid = tid
        self.thread_name = thread_name
        self.depth = depth
        self.start_ps = start_ps
        self.end_ps: Optional[int] = None
        self.self_ps = 0
        self.child_ps = 0
        self.parent = parent
        # Causal identity — assigned by the CausalTracer when the opening
        # thread is inside an active trace, None otherwise.
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None

    # -- derived quantities -------------------------------------------------

    @property
    def total_ps(self) -> int:
        """Inclusive charged picoseconds (self + completed children)."""
        return self.self_ps + self.child_ps

    @property
    def self_ns(self) -> float:
        return self.self_ps / PSEC_PER_NSEC

    @property
    def total_ns(self) -> float:
        return self.total_ps / PSEC_PER_NSEC

    @property
    def closed(self) -> bool:
        return self.end_ps is not None

    def path(self) -> Tuple[str, ...]:
        """The chain of subsystem labels from the root span down to here."""
        labels = []
        node: Optional[Span] = self
        while node is not None:
            labels.append(node.subsystem)
            node = node.parent
        return tuple(reversed(labels))

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"<Span {self.subsystem}:{self.name or '-'} {state} "
            f"self={self.self_ns:.3f}ns total={self.total_ns:.3f}ns>"
        )


class NullSpan:
    """Shared no-op context manager returned when observability is off.

    ``Machine.span(...)`` hands this out so instrumented code can always
    use ``with machine.span(...)`` — the disabled path costs one attribute
    test plus the with-protocol on a singleton, and charges zero virtual
    time (trivially: it does nothing at all).
    """

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: The singleton used by every machine with observability disabled.
NULL_SPAN = NullSpan()
