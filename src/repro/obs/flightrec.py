"""The flight recorder: a crash-surviving ring of recent causal events.

Real kernels keep a pstore/ramoops region — RAM that survives a panic
and even a power cycle — so the console tail leading up to a crash can
be read back after reboot.  :class:`FlightRecorder` is that region for
the simulation: a bounded deque of deterministic one-line records fed by
the :class:`~repro.obs.causal.CausalTracer` (span enter/close, flow
edges, trace begin/end, follows-from links).

On :meth:`~repro.hw.machine.Machine.panic` the kernel flushes the ring
(:meth:`flush`) into the machine-panic tombstone; when the machine has a
journaled block device the flushed tail is *also* written to the
device's ``pstore`` list — the WAL integration: a power cut destroys the
volatile journal tail but, like ramoops, never the pstore region, so
``System.reboot`` can print the pre-crash tail in the recovery log even
after total power loss.

The ring itself lives on the :class:`~repro.hw.machine.Machine` and is
deliberately *not* cleared by ``Machine.reboot`` (it is the one device
whose whole point is surviving that).  Reading the flushed tail consumes
it, exactly like ``/sys/fs/pstore`` files being deleted after read.

Every line is pure virtual-time + counter data — two same-seed runs
produce byte-identical tails, which the crash-determinism CI diffs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

DEFAULT_CAPACITY = 64


class FlightRecorder:
    """Bounded, deterministic ring of recent causal events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.ring: Deque[str] = deque(maxlen=capacity)
        #: Total records ever written (overflow = total - len(ring)).
        self.total = 0
        #: The tail captured by the last panic flush, until consumed.
        self.flushed: Optional[List[str]] = None
        self.flush_reason: Optional[str] = None

    def record(self, ts_ps: int, kind: str, detail: str) -> None:
        self.total += 1
        self.ring.append(f"{ts_ps}ps {kind} {detail}")

    def tail(self) -> List[str]:
        return list(self.ring)

    @property
    def overflowed(self) -> int:
        """Records pushed out of the ring since boot."""
        return self.total - len(self.ring)

    def flush(self, reason: str) -> List[str]:
        """Panic time: snapshot the tail into the crash-surviving slot.
        Idempotent per crash — a second flush before the tail is consumed
        keeps the first snapshot (the earliest panic is the story)."""
        if self.flushed is None:
            self.flushed = self.tail()
            self.flush_reason = reason
        return self.flushed

    def consume_flushed(self) -> Optional[List[str]]:
        """Recovery time: read-and-clear the flushed tail (pstore files
        are deleted once read)."""
        lines, self.flushed, self.flush_reason = self.flushed, None, None
        return lines

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self.ring)}/{self.capacity} "
            f"total={self.total}>"
        )
