"""The per-machine observability hub.

An :class:`Observatory` bundles the three telemetry surfaces of one
machine — hierarchical spans + virtual-time profiler, the typed metrics
registry, and the span-event buffer the exporters read — behind a single
install point (:meth:`repro.hw.machine.Machine.install_observatory`).

Disabled is the default and costs one ``is None`` test at every
instrumentation site, exactly like ``Trace.enabled`` and
``Machine.faults``; nothing here ever charges virtual time, so enabling
or disabling observability cannot change a workload's virtual-ns totals
(the zero-cost-when-off invariant, asserted by the test suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..sim.clock import PSEC_PER_NSEC
from .metrics import MetricsRegistry
from .profiler import Profiler
from .spans import Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.machine import Machine

#: Span-event record: (phase "B"/"E", timestamp_ps, tid, thread_name,
#: subsystem, name, attrs-or-None).  Kept as tuples during the run and
#: serialised only at export time.
SpanEvent = Tuple[str, int, int, str, str, str, Optional[Dict[str, object]]]


class _SpanContext:
    """Context manager wrapping one span open/close pair."""

    __slots__ = ("_obs", "_subsystem", "_name", "_attrs", "span")

    def __init__(
        self,
        obs: "Observatory",
        subsystem: str,
        name: str,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        self._obs = obs
        self._subsystem = subsystem
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._obs.enter_span(
            self._subsystem, self._name, self._attrs
        )
        return self.span

    def __exit__(self, *exc_info: object) -> bool:
        if self.span is not None:
            self._obs.exit_span(self.span)
        return False


class Observatory:
    """Spans + profiler + metrics + exportable event buffer."""

    def __init__(
        self,
        record_span_events: bool = True,
        max_span_events: int = 1_000_000,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.profiler = Profiler()
        self.profiler.on_span_closed = self._on_span_closed
        #: Record B/E span events for the Chrome-trace exporter.  Span
        #: accounting and metrics stay on when this is off.
        self.record_span_events = record_span_events
        self.max_span_events = max_span_events
        self.span_events: List[SpanEvent] = []
        self.dropped_span_events = 0
        #: Record per-span latency histograms (``<subsystem>.ns``).
        self.record_latency_histograms = True
        #: Optional :class:`~repro.obs.causal.CausalTracer` — installed
        #: via :meth:`repro.hw.machine.Machine.install_causal_tracer`.
        self.causal = None
        self._machine: Optional["Machine"] = None
        #: ``clock.charged_ps`` at attach time — profiling starts here.
        self.attach_charged_ps = 0

    # -- wiring -------------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        """Bind to ``machine``: follow its scheduler token and clock."""
        self._machine = machine
        scheduler = machine.scheduler
        self.profiler.current_context = lambda: scheduler._current
        self.profiler.context_identity = self._identity
        self.attach_charged_ps = machine.clock.charged_ps

    @staticmethod
    def _identity(context: object) -> Tuple[int, str]:
        sid = getattr(context, "sid", 0)
        name = getattr(context, "name", "controller")
        return int(sid), str(name)

    @property
    def clock(self):
        if self._machine is None:
            raise RuntimeError("observatory is not attached to a machine")
        return self._machine.clock

    # -- span API -----------------------------------------------------------

    def span(
        self, subsystem: str, name: str = "", **attrs: object
    ) -> _SpanContext:
        """``with obs.span("kernel.trap", "linux", nr=4): ...``"""
        return _SpanContext(self, subsystem, name, attrs or None)

    def enter_span(
        self,
        subsystem: str,
        name: str = "",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        now_ps = self.clock.now_ps
        span = self.profiler.enter_span(subsystem, name, attrs, now_ps)
        if self.causal is not None:
            self.causal.on_enter(span)
        if self.record_span_events:
            self._record_event("B", now_ps, span)
        return span

    def exit_span(self, span: Span) -> None:
        self.profiler.exit_span(span, self.clock.now_ps)

    def _on_span_closed(self, span: Span) -> None:
        """Profiler callback for every finished span (including spans
        force-closed during exception unwind)."""
        if self.causal is not None:
            self.causal.on_close(span)
        if self.record_span_events:
            self._record_event("E", span.end_ps or 0, span)
        if self.record_latency_histograms:
            self.metrics.histogram(f"{span.subsystem}.ns").record(span.total_ns)
            self.metrics.counter(f"{span.subsystem}.calls").inc()

    def _record_event(self, phase: str, now_ps: int, span: Span) -> None:
        if len(self.span_events) >= self.max_span_events:
            self.dropped_span_events += 1
            return
        self.span_events.append(
            (
                phase,
                now_ps,
                span.tid,
                span.thread_name,
                span.subsystem,
                span.name,
                span.attrs,
            )
        )

    def pending_close_events(self, aborted: bool = False) -> List[SpanEvent]:
        """Synthetic ``E`` events (at the current virtual time) for spans
        still open — daemon service loops parked in ``mach_msg_receive``
        hold their span across the whole run.  The Chrome exporter appends
        these so the emitted trace is always balanced; the live spans are
        *not* closed.  ``aborted`` tags each synthetic close — used when
        exporting from a machine that panicked mid-span."""
        now_ps = self._machine.clock.now_ps if self._machine is not None else 0
        events: List[SpanEvent] = []
        attrs = {"aborted": True} if aborted else None
        for stack in self.profiler._stacks.values():
            for span in reversed(stack):
                events.append(
                    (
                        "E",
                        now_ps,
                        span.tid,
                        span.thread_name,
                        span.subsystem,
                        span.name,
                        attrs,
                    )
                )
        return events

    # -- scheduler hook -----------------------------------------------------

    def on_context_switch(self, from_name: str, to_name: str) -> None:
        self.metrics.counter("sim.sched.switches").inc()

    # -- summary numbers ----------------------------------------------------

    def profiled_ps(self) -> int:
        """Charged ps observed since attach (== clock delta, exactly)."""
        return self.profiler.observed_ps

    def profiled_ns(self) -> float:
        return self.profiler.observed_ps / PSEC_PER_NSEC

    def __repr__(self) -> str:
        return (
            f"<Observatory metrics={len(self.metrics)} "
            f"events={len(self.span_events)} "
            f"profiled={self.profiled_ns():.0f}ns>"
        )
