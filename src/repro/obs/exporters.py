"""Exporters: Chrome trace-event JSON and a ``perf report``-style dump.

The Chrome format is the `chrome://tracing` / Perfetto "JSON Object
Format": a top-level object with a ``traceEvents`` array of ``B``/``E``
duration events (microsecond ``ts``), plus ``M`` metadata events naming
each simulated thread.  Spans open/close strictly LIFO per simulated
thread, so the B/E pairs nest by construction.

Everything emitted is deterministic: events are already in emission
order (virtual time is monotonic), names are sorted where sets are
involved, and JSON is dumped with sorted keys.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..sim.clock import PSEC_PER_NSEC
from .observatory import Observatory
from .profiler import UNATTRIBUTED

_PS_PER_USEC = PSEC_PER_NSEC * 1_000


def _machine_events(
    obs: Observatory,
    pid: int,
    process_name: str,
    aborted: bool = False,
    with_flows: bool = False,
) -> List[Dict[str, object]]:
    """One machine's worth of trace events under process id ``pid``."""
    events: List[Dict[str, object]] = []
    seen_tids: Dict[int, str] = {}
    events.append(
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    )
    all_events = list(obs.span_events)
    # Balance spans still open (daemon loops blocked in receive, etc.).
    all_events.extend(obs.pending_close_events(aborted=aborted))
    for phase, now_ps, tid, thread_name, subsystem, name, attrs in all_events:
        if tid not in seen_tids:
            seen_tids[tid] = thread_name
        record: Dict[str, object] = {
            "ph": phase,
            "pid": pid,
            "tid": tid,
            "ts": now_ps / _PS_PER_USEC,  # microseconds, exact ps / 1e6
        }
        if phase == "B":
            record["name"] = f"{subsystem}:{name}" if name else subsystem
            record["cat"] = subsystem
            if attrs:
                record["args"] = {k: _jsonable(v) for k, v in attrs.items()}
        elif attrs:
            # E events carry args too (Chrome merges them with the B
            # args) — how the ``aborted`` flag from a panicked machine
            # survives into the exported file.
            record["args"] = {k: _jsonable(v) for k, v in attrs.items()}
        events.append(record)
    for tid in sorted(seen_tids):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": seen_tids[tid]},
            }
        )
    if with_flows and obs.causal is not None:
        for event in obs.causal.events:
            kind = event["kind"]
            if kind not in ("flow.send", "flow.recv"):
                continue
            flow: Dict[str, object] = {
                "ph": "s" if kind == "flow.send" else "f",
                "pid": pid,
                "tid": event.get("tid", 0),
                "ts": event["ts_ps"] / _PS_PER_USEC,
                "id": event["flow"],
                "name": "causal-flow",
                "cat": "causal",
                "args": {"trace": event["trace"]},
            }
            if kind == "flow.recv":
                flow["bp"] = "e"  # bind to the enclosing slice
            events.append(flow)
    return events


def chrome_trace(
    obs: Observatory, process_name: str = "cider-sim"
) -> Dict[str, object]:
    """The trace as a Chrome trace-event JSON object (ready to dump)."""
    return {
        "traceEvents": _machine_events(obs, 1, process_name),
        "displayTimeUnit": "ns",
        "otherData": {
            "droppedSpanEvents": obs.dropped_span_events,
            "profiledNs": obs.profiled_ns(),
        },
    }


def chrome_trace_world(machines) -> Dict[str, object]:
    """A single Chrome trace covering several machines: one ``pid`` per
    machine (every virtual clock starts at zero, so the timestamps of all
    machines are aligned in one timeline with no skew correction) plus
    cross-machine flow events (``ph`` ``"s"``/``"f"``) whose ids are the
    causal tracer's flow ids — the arrows that tie a client-side send to
    the origin-side receive across process tracks."""
    events: List[Dict[str, object]] = []
    dropped = 0
    profiled_ns = 0.0
    for pid, machine in enumerate(machines, start=1):
        obs = machine.obs
        if obs is None:
            raise ValueError(
                f"machine {machine.profile.name!r} has no observatory"
            )
        name = obs.causal.node if obs.causal is not None else machine.profile.name
        events.extend(
            _machine_events(
                obs, pid, name, aborted=machine.crashed, with_flows=True
            )
        )
        dropped += obs.dropped_span_events
        profiled_ns += obs.profiled_ns()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "droppedSpanEvents": dropped,
            "profiledNs": profiled_ns,
        },
    }


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def write_chrome_trace(
    obs: Observatory, path: str, process_name: str = "cider-sim"
) -> None:
    """Write ``trace.json`` loadable by chrome://tracing / Perfetto."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(obs, process_name), fh, sort_keys=True)


def write_chrome_trace_world(machines, path: str) -> None:
    """Write a multi-machine ``trace.json`` (see :func:`chrome_trace_world`)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace_world(machines), fh, sort_keys=True)


def validate_chrome_trace(trace: Dict[str, object]) -> List[str]:
    """Structural validation of a trace object: well-formed ``traceEvents``
    with nested (balanced, LIFO) B/E pairs per ``(pid, tid)`` track and
    monotonic ``ts`` on each track; flow events (``s``/``f``) must carry
    an ``id``.  Returns a list of problems (empty == valid)."""
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    stacks: Dict[object, List[Dict[str, object]]] = {}
    last_ts: Dict[object, float] = {}
    flows: Dict[object, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"event {index}: not a trace event object")
            continue
        phase = event["ph"]
        if phase == "M":
            continue
        track = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {index}: missing/bad ts")
            continue
        if phase in ("s", "f"):
            # Flow events live outside the B/E nesting and are appended
            # per machine, so they are exempt from track ts ordering.
            if "id" not in event:
                problems.append(f"event {index}: flow event without id")
            else:
                flows[event["id"]] = flows.get(event["id"], 0) + (
                    1 if phase == "s" else -1
                )
            continue
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event {index}: ts moves backwards on track {track}"
            )
        last_ts[track] = ts
        if phase == "B":
            if "name" not in event:
                problems.append(f"event {index}: B event without name")
            stacks.setdefault(track, []).append(event)
        elif phase == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(
                    f"event {index}: E without open B on track {track}"
                )
            else:
                stack.pop()
        else:
            problems.append(f"event {index}: unsupported phase {phase!r}")
    for track, stack in sorted(stacks.items(), key=lambda kv: str(kv[0])):
        if stack:
            problems.append(f"track {track}: {len(stack)} unclosed B events")
    for flow_id in sorted(flows, key=str):
        if flows[flow_id] < 0:
            problems.append(f"flow {flow_id}: finish without start")
    return problems


# ---------------------------------------------------------------------------
# Plain-text ("perf report") rendering.
# ---------------------------------------------------------------------------


def text_report(obs: Observatory, title: str = "virtual-time profile") -> str:
    """A deterministic, human-readable profile dump."""
    profiler = obs.profiler
    total_ps = profiler.observed_ps
    lines: List[str] = []
    lines.append(f"# {title}")
    lines.append(
        f"# profiled {total_ps / PSEC_PER_NSEC:.0f} virtual ns "
        f"({len(obs.span_events)} span events)"
    )
    lines.append("")
    lines.append(
        f"{'SELF%':>7} {'SELF ns':>14} {'TOTAL ns':>14} {'CALLS':>9}  SUBSYSTEM"
    )
    rows = [
        (stat.subsystem, stat.calls, stat.self_ps, stat.total_ps)
        for stat in profiler.subsystem_table()
    ]
    if profiler.unattributed_ps:
        rows.append((UNATTRIBUTED, 0, profiler.unattributed_ps, profiler.unattributed_ps))
        rows.sort(key=lambda r: (-r[2], r[0]))
    for subsystem, calls, self_ps, sub_total_ps in rows:
        pct = 100.0 * self_ps / total_ps if total_ps else 0.0
        lines.append(
            f"{pct:7.2f} {self_ps / PSEC_PER_NSEC:14.0f} "
            f"{sub_total_ps / PSEC_PER_NSEC:14.0f} {calls:9d}  {subsystem}"
        )
    lines.append("")
    lines.append("# flame (folded stacks: path calls self-ns total-ns)")
    for path, calls, self_ps, node_total_ps in profiler.flame_rows():
        lines.append(
            f"{path} {calls} {self_ps / PSEC_PER_NSEC:.0f} "
            f"{node_total_ps / PSEC_PER_NSEC:.0f}"
        )
    return "\n".join(lines) + "\n"


def histogram_report(obs: Observatory) -> str:
    """Latency percentiles for every histogram metric, name-sorted."""
    lines = [
        f"{'METRIC':<34} {'COUNT':>8} {'P50 ns':>12} {'P95 ns':>12} "
        f"{'P99 ns':>12} {'MAX ns':>14}"
    ]
    snapshot = obs.metrics.snapshot()
    for name in sorted(snapshot):
        record = snapshot[name]
        if record.get("type") != "histogram":
            continue
        lines.append(
            f"{name:<34} {record['count']:>8} {record['p50']:>12.0f} "
            f"{record['p95']:>12.0f} {record['p99']:>12.0f} "
            f"{(record['max'] or 0):>14.0f}"
        )
    return "\n".join(lines) + "\n"
