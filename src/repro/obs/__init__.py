"""repro.obs — full-stack telemetry for the Cider simulation.

The observability subsystem (spans, metrics, virtual-time profiler,
exporters).  Install on a machine with::

    obs = machine.install_observatory()
    ... run workload ...
    print(text_report(obs))
    write_chrome_trace(obs, "trace.json")

Everything is off by default; instrumented fast paths pay exactly one
``machine.obs is None`` test, and no telemetry code ever charges the
virtual clock — enabling observability cannot perturb measured virtual
time (see ``tests/test_obs.py::TestZeroCostWhenOff``).
"""

from .causal import CausalContext, CausalTracer
from .diff import (
    assemble_trace,
    critical_path,
    format_critical_path,
    format_diff_report,
    load_trace,
    save_trace,
    trace_diff,
    trace_ids,
)
from .flightrec import FlightRecorder
from .metrics import (
    Counter,
    DEFAULT_BUCKET_BOUNDS_NS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .observatory import Observatory
from .profiler import FlameNode, Profiler, SubsystemStat, UNATTRIBUTED
from .spans import NULL_SPAN, NullSpan, Span
from .exporters import (
    chrome_trace,
    chrome_trace_world,
    histogram_report,
    text_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_chrome_trace_world,
)
from .report import artifact_summary, format_summary, run_summary, write_summary

__all__ = [
    "CausalContext",
    "CausalTracer",
    "FlightRecorder",
    "assemble_trace",
    "critical_path",
    "format_critical_path",
    "format_diff_report",
    "load_trace",
    "save_trace",
    "trace_diff",
    "trace_ids",
    "chrome_trace_world",
    "write_chrome_trace_world",
    "artifact_summary",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observatory",
    "FlameNode",
    "Profiler",
    "SubsystemStat",
    "UNATTRIBUTED",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "chrome_trace",
    "histogram_report",
    "text_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "format_summary",
    "run_summary",
    "write_summary",
]
