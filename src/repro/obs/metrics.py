"""Typed per-machine metrics: counters, gauges, latency histograms.

Metric names follow the ``subsystem.verb.unit`` convention used across
the stack — ``kernel.trap.calls``, ``xnu.ipc.send.ns``,
``diplomacy.call.ns``, ``sim.sched.switches`` — so a snapshot sorts into
a readable per-subsystem report and two snapshots diff mechanically.

Histograms use **fixed** bucket boundaries over virtual nanoseconds and
report deterministic percentiles (the upper bound of the bucket holding
the requested rank), which makes p50/p95/p99 bit-stable across runs and
platforms — the property gem5-style stats layers need for regression
baselines.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Default latency buckets (virtual ns): 100ns … 1s, geometric, plus
#: an overflow bucket.  Chosen to straddle everything from a persona
#: check (~30ns) to a fork+exec (~4ms) to a composition pass.
DEFAULT_BUCKET_BOUNDS_NS: Tuple[float, ...] = (
    100.0,
    316.0,
    1_000.0,
    3_160.0,
    10_000.0,
    31_600.0,
    100_000.0,
    316_000.0,
    1_000_000.0,
    3_160_000.0,
    10_000_000.0,
    31_600_000.0,
    100_000_000.0,
    1_000_000_000.0,
)


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (queue depth, resident pages, live ports)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket latency histogram over virtual nanoseconds."""

    __slots__ = ("name", "bounds", "buckets", "count", "sum", "min", "max")

    def __init__(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_BUCKET_BOUNDS_NS
        )
        # One bucket per bound ("<= bound") plus the overflow bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value_ns: float) -> None:
        self.count += 1
        self.sum += value_ns
        if self.min is None or value_ns < self.min:
            self.min = value_ns
        if self.max is None or value_ns > self.max:
            self.max = value_ns
        for index, bound in enumerate(self.bounds):
            if value_ns <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def percentile(self, p: float) -> float:
        """Deterministic percentile: the upper bound of the bucket that
        contains the ``p``-th rank (``max`` for the overflow bucket).
        Returns 0.0 for an empty histogram."""
        if self.count == 0:
            return 0.0
        exact = p * self.count  # ceil(p * count), clamped to [1, count]
        rank = int(exact)
        if rank < exact:
            rank += 1
        rank = max(1, min(rank, self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0  # pragma: no cover

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name} n={self.count} "
            f"p50={self.percentile(0.5):.0f}ns p99={self.percentile(0.99):.0f}ns>"
        )


class MetricsRegistry:
    """All metrics of one machine, keyed by ``subsystem.verb.unit`` name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- constructors (get-or-create, type-checked) -------------------------

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def _get(self, name: str, cls: type) -> object:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / diff ----------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deterministic (name-sorted) dump of every metric."""
        return {
            name: self._metrics[name].snapshot()  # type: ignore[attr-defined]
            for name in sorted(self._metrics)
        }

    @staticmethod
    def diff(
        before: Mapping[str, Mapping[str, object]],
        after: Mapping[str, Mapping[str, object]],
    ) -> Dict[str, Dict[str, object]]:
        """Counter/histogram-count deltas between two snapshots.

        Gauges report their ``after`` value.  Metrics present only in
        ``after`` diff against zero; metrics that disappeared are ignored
        (registries only grow).
        """
        result: Dict[str, Dict[str, object]] = {}
        for name in sorted(after):
            new = after[name]
            old = before.get(name, {})
            kind = new.get("type")
            if kind == "counter":
                delta = int(new.get("value", 0)) - int(old.get("value", 0) or 0)
                if delta:
                    result[name] = {"type": "counter", "delta": delta}
            elif kind == "gauge":
                if new.get("value") != old.get("value"):
                    result[name] = {"type": "gauge", "value": new.get("value")}
            elif kind == "histogram":
                delta = int(new.get("count", 0)) - int(old.get("count", 0) or 0)
                if delta:
                    result[name] = {"type": "histogram", "count_delta": delta}
        return result
