"""Synthetic binary images.

Real Cider loads ARM Mach-O and ELF files.  The simulation represents a
binary as a :class:`BinaryImage`: a structured object carrying everything
the loaders, dynamic linkers, API interposition, and the diplomat
generator need — magic bytes, segments with sizes (they determine the
process's memory footprint and therefore fork cost), an exported symbol
table, declared library dependencies, an entry point, and the compiler
profile that built it (GCC vs Xcode code quality differs; Fig. 5 group 1).

Code is represented by Python callables of the form ``fn(ctx, *args)``
where ``ctx`` is the :class:`repro.kernel.process.UserContext` of the
calling thread.  This is the substitution for machine code: the functions
charge virtual time for the work they model and may only interact with the
system through the context (libc, syscalls, loaded libraries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from ..hw.cpu import GCC_4_4_1, XCODE_4_2_1, CompilerProfile

#: ELF magic (\x7fELF) — what a Linux kernel's binfmt sniffing looks for.
ELF_MAGIC = b"\x7fELF"
#: 32-bit Mach-O magic (MH_MAGIC, 0xfeedface) in little-endian byte order.
MACHO_MAGIC = b"\xce\xfa\xed\xfe"

KB = 1024
MB = 1024 * KB


class BinaryFormat(Enum):
    ELF = "elf"
    MACHO = "macho"


class BinaryKind(Enum):
    EXECUTABLE = "executable"
    SHARED_LIBRARY = "shared_library"


class Arch(Enum):
    ARMV7 = "armv7"
    X86 = "x86"  # used only by negative tests (wrong-arch rejection)


@dataclass(frozen=True)
class Segment:
    """A loadable segment; size feeds the address-space footprint."""

    name: str  # "__TEXT", "__DATA" / ".text", ".data"
    size_bytes: int
    writable: bool = False

    def __deepcopy__(self, memo: dict) -> "Segment":
        # Frozen value object: boot-snapshot clones share it.
        return self


class Symbol:
    """One exported symbol of a binary image."""

    def __init__(
        self,
        name: str,
        fn: Optional[Callable] = None,
        data: object = None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.data = data

    @property
    def is_function(self) -> bool:
        return self.fn is not None

    def __repr__(self) -> str:
        kind = "func" if self.is_function else "data"
        return f"<Symbol {self.name!r} {kind}>"


class BinaryImage:
    """A synthetic ELF or Mach-O file's parsed form."""

    def __init__(
        self,
        name: str,
        format: BinaryFormat,
        kind: BinaryKind,
        arch: Arch = Arch.ARMV7,
        segments: Optional[Sequence[Segment]] = None,
        exports: Optional[Dict[str, Symbol]] = None,
        deps: Optional[Sequence[str]] = None,
        entry_symbol: Optional[str] = None,
        compiler: Optional[CompilerProfile] = None,
        encrypted: bool = False,
        install_name: Optional[str] = None,
    ) -> None:
        self.name = name
        self.format = format
        self.kind = kind
        self.arch = arch
        self.segments: List[Segment] = list(segments or [])
        self.exports: Dict[str, Symbol] = dict(exports or {})
        self.deps: List[str] = list(deps or [])
        self.entry_symbol = entry_symbol
        self.compiler = compiler or (
            GCC_4_4_1 if format is BinaryFormat.ELF else XCODE_4_2_1
        )
        #: App Store binaries ship encrypted (LC_ENCRYPTION_INFO cryptid=1)
        #: and must be decrypted on a jailbroken device first (§6.1).
        self.encrypted = encrypted
        self.install_name = install_name or name

    # -- structural queries -------------------------------------------------

    @property
    def magic(self) -> bytes:
        return ELF_MAGIC if self.format is BinaryFormat.ELF else MACHO_MAGIC

    @property
    def vm_size_bytes(self) -> int:
        return sum(seg.size_bytes for seg in self.segments)

    @property
    def vm_size_mb(self) -> float:
        return self.vm_size_bytes / MB

    def export_names(self) -> List[str]:
        return sorted(self.exports)

    def lookup(self, symbol_name: str) -> Symbol:
        try:
            return self.exports[symbol_name]
        except KeyError:
            raise UndefinedSymbolError(
                f"{self.name}: undefined symbol {symbol_name!r}"
            ) from None

    @property
    def entry(self) -> Callable:
        if self.entry_symbol is None:
            raise BadBinaryError(f"{self.name}: no entry point")
        symbol = self.lookup(self.entry_symbol)
        if symbol.fn is None:
            raise BadBinaryError(f"{self.name}: entry {symbol.name!r} is data")
        return symbol.fn

    def decrypted_copy(self) -> "BinaryImage":
        """The image with its encrypted text segment decrypted."""
        clone = BinaryImage(
            name=self.name,
            format=self.format,
            kind=self.kind,
            arch=self.arch,
            segments=self.segments,
            exports=self.exports,
            deps=self.deps,
            entry_symbol=self.entry_symbol,
            compiler=self.compiler,
            encrypted=False,
            install_name=self.install_name,
        )
        return clone

    def __repr__(self) -> str:
        return (
            f"<BinaryImage {self.name!r} {self.format.value}/{self.kind.value} "
            f"{self.vm_size_mb:.1f}MB exports={len(self.exports)}>"
        )


class BadBinaryError(Exception):
    """The image is malformed or not executable."""


class UndefinedSymbolError(Exception):
    """Symbol lookup failed during linking or dlsym."""


# -- builders ----------------------------------------------------------------


def _wrap_exports(
    functions: Dict[str, Callable], data: Optional[Dict[str, object]] = None
) -> Dict[str, Symbol]:
    exports = {name: Symbol(name, fn=fn) for name, fn in functions.items()}
    for name, value in (data or {}).items():
        exports[name] = Symbol(name, data=value)
    return exports


def elf_executable(
    name: str,
    entry: Callable,
    deps: Optional[Sequence[str]] = None,
    text_kb: int = 64,
    data_kb: int = 16,
    extra_exports: Optional[Dict[str, Callable]] = None,
    compiler: CompilerProfile = GCC_4_4_1,
) -> BinaryImage:
    """A Linux/Android executable (the lmbench ELF build, hello-world...)."""
    exports = _wrap_exports({"main": entry, **(extra_exports or {})})
    return BinaryImage(
        name=name,
        format=BinaryFormat.ELF,
        kind=BinaryKind.EXECUTABLE,
        segments=[
            Segment(".text", text_kb * KB),
            Segment(".data", data_kb * KB, writable=True),
        ],
        exports=exports,
        deps=list(deps if deps is not None else ["libc.so"]),
        entry_symbol="main",
        compiler=compiler,
    )


def elf_library(
    name: str,
    functions: Optional[Dict[str, Callable]] = None,
    deps: Optional[Sequence[str]] = None,
    text_kb: int = 128,
    data_kb: int = 32,
    data: Optional[Dict[str, object]] = None,
) -> BinaryImage:
    """An Android ELF shared object (libc.so, libGLESv2.so, ...)."""
    return BinaryImage(
        name=name,
        format=BinaryFormat.ELF,
        kind=BinaryKind.SHARED_LIBRARY,
        segments=[
            Segment(".text", text_kb * KB),
            Segment(".data", data_kb * KB, writable=True),
        ],
        exports=_wrap_exports(functions or {}, data),
        deps=list(deps or []),
    )


def macho_executable(
    name: str,
    entry: Callable,
    deps: Optional[Sequence[str]] = None,
    text_kb: int = 96,
    data_kb: int = 24,
    extra_exports: Optional[Dict[str, Callable]] = None,
    compiler: CompilerProfile = XCODE_4_2_1,
    encrypted: bool = False,
) -> BinaryImage:
    """An iOS app binary (Mach-O).  C entry points are underscored."""
    exports = _wrap_exports({"_main": entry, **(extra_exports or {})})
    return BinaryImage(
        name=name,
        format=BinaryFormat.MACHO,
        kind=BinaryKind.EXECUTABLE,
        segments=[
            Segment("__TEXT", text_kb * KB),
            Segment("__DATA", data_kb * KB, writable=True),
        ],
        exports=exports,
        deps=list(
            deps if deps is not None else ["/usr/lib/libSystem.B.dylib"]
        ),
        entry_symbol="_main",
        compiler=compiler,
        encrypted=encrypted,
    )


def macho_dylib(
    name: str,
    functions: Optional[Dict[str, Callable]] = None,
    deps: Optional[Sequence[str]] = None,
    text_kb: int = 256,
    data_kb: int = 64,
    data: Optional[Dict[str, object]] = None,
    install_name: Optional[str] = None,
) -> BinaryImage:
    """An iOS framework dylib (UIKit, Foundation, OpenGLES...)."""
    return BinaryImage(
        name=name,
        format=BinaryFormat.MACHO,
        kind=BinaryKind.SHARED_LIBRARY,
        segments=[
            Segment("__TEXT", text_kb * KB),
            Segment("__DATA", data_kb * KB, writable=True),
        ],
        exports=_wrap_exports(functions or {}, data),
        deps=list(deps or []),
        install_name=install_name,
    )


def sniff_format(magic: bytes) -> Optional[BinaryFormat]:
    """What a kernel's binfmt probe does with the first file bytes."""
    if magic.startswith(ELF_MAGIC):
        return BinaryFormat.ELF
    if magic.startswith(MACHO_MAGIC):
        return BinaryFormat.MACHO
    return None
