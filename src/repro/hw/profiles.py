"""Calibrated device profiles.

Two devices matter for the evaluation (paper §6):

* **Nexus 7 (2012)** — 1.3 GHz quad-core Tegra 3, 1 GB RAM, 16 GB flash,
  7" 1280x800.  Runs Android 4.2 vanilla or with the Cider kernel.  Its
  cost model is the baseline; every figure normalises to it.
* **iPad mini (1st gen)** — 1 GHz dual-core A5 (SGX543MP2 GPU), 512 MB RAM,
  16 GB flash, 7.9" 1024x768, iOS 6.1.2.  Slower CPU, faster GPU, faster
  flash writes, XNU kernel quirks (select blow-up), dyld shared cache.

Each override cites the observation in the paper it is calibrated against.
"""

from __future__ import annotations

from typing import Dict

from ..sim.costs import CostModel
from .machine import DeviceProfile


class LinkProfile:
    """Cost model of one network interface on one device.

    The virtual netstack (:mod:`repro.net`) charges three things per
    transfer, all against the sender's virtual clock:

    * ``latency_ns`` — one propagation delay per flight (connect pays the
      handshake's 1.5 RTT; a windowed stream pays one RTT per congestion
      window's worth of unacknowledged bytes).
    * ``ns_per_kb`` — serialisation time: the reciprocal of goodput.
    * ``mtu`` — payloads are segmented into MTU-sized frames and the
      per-segment CPU costs (``net_tx_per_segment``/``net_rx_per_segment``)
      are charged once per frame, so small-MTU links pay more CPU per byte
      exactly the way a real NIC driver does.

    Deterministic by construction: the numbers are part of the device
    profile, so the same seed replays byte-identical packet logs.
    """

    __slots__ = ("name", "latency_ns", "ns_per_kb", "mtu")

    def __init__(self, name: str, latency_ns: float, ns_per_kb: float, mtu: int) -> None:
        self.name = name
        self.latency_ns = latency_ns
        self.ns_per_kb = ns_per_kb
        self.mtu = mtu

    def __repr__(self) -> str:
        return (
            f"<LinkProfile {self.name!r} lat={self.latency_ns:.0f}ns "
            f"{self.ns_per_kb:.0f}ns/KB mtu={self.mtu}>"
        )


def _loopback() -> LinkProfile:
    # In-memory copy through the stack; 64KB "frames", ~30ns/KB memcpy.
    return LinkProfile("lo", latency_ns=5_000.0, ns_per_kb=30.0, mtu=65536)


def default_links() -> Dict[str, LinkProfile]:
    """Fallback link table for profiles that predate ``links``."""
    return {
        "lo": _loopback(),
        "wlan0": LinkProfile(
            "wlan0", latency_ns=1_500_000.0, ns_per_kb=126_000.0, mtu=1500
        ),
    }


#: Basic-operation cost names scaled by raw CPU speed.
_CPU_BOUND_COSTS = (
    "op_int_add",
    "op_int_mul",
    "op_int_div",
    "op_double_add",
    "op_double_mul",
    "op_branch",
    "op_load",
    "op_store",
    "op_call",
    "native_op",
    "objc_msgsend",
    "raster2d_solid_op",
    "raster2d_trans_op",
    "raster2d_complex_op",
    "raster2d_image_op",
    "raster2d_filter_op",
)


def nexus7() -> DeviceProfile:
    """The Android device under test — the normalisation baseline."""
    return DeviceProfile(
        name="nexus7",
        cost_model=CostModel(name="nexus7"),
        cpu_cores=4,
        cpu_mhz=1300,
        ram_mb=1024,
        flash_gb=16,
        display_width=1280,
        display_height=800,
        gpu_speed_factor=1.0,
        links={
            "lo": _loopback(),
            # BCM4330 802.11n radio: ~65 Mbps of real-world goodput
            # (8192 bits/KB / 65e6 bps ~= 126 us/KB), ~1.5 ms one-way
            # to a same-AP peer.
            "wlan0": LinkProfile(
                "wlan0", latency_ns=1_500_000.0, ns_per_kb=126_000.0, mtu=1500
            ),
        },
    )


def ipad_mini() -> DeviceProfile:
    """The Apple comparison device (jailbroken, iOS 6.1.2)."""
    base = CostModel(name="nexus7")
    # A5 @ 1.0GHz vs Tegra 3 @ 1.3GHz: basic ops uniformly slower
    # ("in all cases, the measurements for the iOS device were worse",
    # Fig. 5 group 1; Cider also outperforms the iPad on PassMark CPU and
    # memory tests "reflecting the benefit of using faster Android
    # hardware", §6.3).
    model = base.scaled("ipad_mini", 1.35, *_CPU_BOUND_COSTS)
    model = model.derive(
        "ipad_mini",
        # Memory subsystem is slower in step with the CPU (Fig. 6 memory).
        mem_read_per_kb=base["mem_read_per_kb"] * 1.4,
        mem_write_per_kb=base["mem_write_per_kb"] * 1.4,
        # XNU trap path: "running the iOS binary on the Nexus 7 using
        # Cider is much faster in these syscall measurements than running
        # the same binary on the iPad mini" (Fig. 5 group 2).
        syscall_entry=base["syscall_entry"] * 1.9,
        syscall_exit=base["syscall_exit"] * 1.9,
        # Signal handling: the iPad takes 175% longer than Cider-iOS,
        # which itself runs 25% over vanilla => ~3.4x the baseline.
        signal_deliver=base["signal_deliver"] * 3.9,
        # XNU's local IPC paths (pipes, AF_UNIX) are markedly slower than
        # Linux's ("measurements on the iPad mini were significantly
        # worse than the Android device in a number of cases", §6.2).
        pipe_transfer=base["pipe_transfer"] * 3.0,
        sock_transfer=base["sock_transfer"] * 2.5,
        # XNU select scans cost far more per fd; the test exceeded 10x
        # vanilla and "simply failed to complete for 250 file
        # descriptors" (Fig. 5 group 4).
        select_per_fd=base["select_per_fd"] * 13.0,
        # iPad mini flash writes are much faster than the Nexus 7's
        # ("much better storage write performance", Fig. 6 storage).
        storage_write_per_kb=base["storage_write_per_kb"] * 0.33,
    )
    return DeviceProfile(
        name="ipad_mini",
        cost_model=model,
        cpu_cores=2,
        cpu_mhz=1000,
        ram_mb=512,
        flash_gb=16,
        display_width=1024,
        display_height=768,
        # SGX543MP2 beats Tegra 3 on 3D throughput (Fig. 6 3D).
        gpu_speed_factor=0.55,
        quirks=frozenset({"xnu_select_blowup", "dyld_shared_cache"}),
        links={
            "lo": _loopback(),
            # BCM4334 radio: slightly lower goodput and higher driver
            # latency than the Nexus 7's part on the same 802.11n AP.
            "wlan0": LinkProfile(
                "wlan0", latency_ns=1_800_000.0, ns_per_kb=140_000.0, mtu=1500
            ),
        },
    )


def iphone3gs() -> DeviceProfile:
    """Old jailbroken device used only to decrypt App Store `.ipa`s (§6.1)."""
    base = CostModel(name="nexus7")
    model = base.scaled("iphone3gs", 2.4, *_CPU_BOUND_COSTS)
    return DeviceProfile(
        name="iphone3gs",
        cost_model=model,
        cpu_cores=1,
        cpu_mhz=600,
        ram_mb=256,
        flash_gb=16,
        display_width=480,
        display_height=320,
        gpu_speed_factor=2.5,
        quirks=frozenset({"dyld_shared_cache"}),
    )
