"""Touch panel hardware.

Tests and examples inject :class:`TouchEvent` streams; the kernel's input
driver drains the hardware queue and republishes events through the
evdev-style device node that the Android input subsystem reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class TouchEvent:
    """One multi-touch event as produced by the panel."""

    kind: str  # "down" | "move" | "up"
    x: float
    y: float
    pointer_id: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("down", "move", "up"):
            raise ValueError(f"bad touch event kind {self.kind!r}")


class TouchScreen:
    """The panel's hardware event FIFO."""

    def __init__(self) -> None:
        self._queue: List[TouchEvent] = []
        self._listener: Optional[Callable[[TouchEvent], None]] = None
        self.events_injected = 0

    def attach_driver(self, listener: Callable[[TouchEvent], None]) -> None:
        """The kernel driver registers its interrupt handler here."""
        self._listener = listener
        for event in self._queue:
            listener(event)
        self._queue.clear()

    def inject(self, event: TouchEvent) -> None:
        """Hardware-level event injection (the user's finger)."""
        self.events_injected += 1
        if self._listener is not None:
            self._listener(event)
        else:
            self._queue.append(event)

    # Convenience gestures for tests and examples -------------------------

    def tap(self, x: float, y: float, pointer_id: int = 0) -> None:
        self.inject(TouchEvent("down", x, y, pointer_id))
        self.inject(TouchEvent("up", x, y, pointer_id))

    def swipe(
        self, x0: float, y0: float, x1: float, y1: float, steps: int = 4
    ) -> None:
        self.inject(TouchEvent("down", x0, y0))
        for i in range(1, steps + 1):
            frac = i / steps
            self.inject(
                TouchEvent("move", x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac)
            )
        self.inject(TouchEvent("up", x1, y1))

    def pinch(self, cx: float, cy: float, start: float, end: float) -> None:
        """Two-pointer pinch from ``start`` to ``end`` spread."""
        self.inject(TouchEvent("down", cx - start, cy, pointer_id=0))
        self.inject(TouchEvent("down", cx + start, cy, pointer_id=1))
        for spread in (start + (end - start) * f / 3 for f in range(1, 4)):
            self.inject(TouchEvent("move", cx - spread, cy, pointer_id=0))
            self.inject(TouchEvent("move", cx + spread, cy, pointer_id=1))
        self.inject(TouchEvent("up", cx - end, cy, pointer_id=0))
        self.inject(TouchEvent("up", cx + end, cy, pointer_id=1))
