"""Simulated mobile hardware: machines, device profiles, and peripherals."""

from .accelerometer import Accelerometer, AccelSample
from .cpu import CPU, GCC_4_4_1, XCODE_4_2_1, CompilerProfile
from .display import CELL_H_PX, CELL_W_PX, Display, PixelBuffer
from .gpu import GPU, Fence, GpuCommand
from .machine import DeviceProfile, Machine
from .profiles import ipad_mini, iphone3gs, nexus7
from .storage import FlashStorage
from .touchscreen import TouchEvent, TouchScreen

__all__ = [
    "Accelerometer",
    "AccelSample",
    "CPU",
    "GCC_4_4_1",
    "XCODE_4_2_1",
    "CompilerProfile",
    "CELL_H_PX",
    "CELL_W_PX",
    "Display",
    "PixelBuffer",
    "GPU",
    "Fence",
    "GpuCommand",
    "DeviceProfile",
    "Machine",
    "ipad_mini",
    "iphone3gs",
    "nexus7",
    "FlashStorage",
    "TouchEvent",
    "TouchScreen",
]
