"""CPU model and compiler profiles.

The CPU itself is a thin descriptive object — per-operation costs live in
the machine's cost model.  What matters for the evaluation is the
*compiler profile* attached to each synthetic binary: lmbench's basic CPU
operation results (Fig. 5, group 1) differ between the ELF and Mach-O
builds of the same source because GCC 4.4.1 and Xcode 4.2.1 generate
different code, most visibly for integer divide.
"""

from __future__ import annotations

from typing import Dict, Mapping


class CPU:
    """Descriptive CPU model (cores and clock; costs live in the model)."""

    def __init__(self, cores: int, mhz: int) -> None:
        self.cores = cores
        self.mhz = mhz

    def __repr__(self) -> str:
        return f"<CPU {self.cores}x{self.mhz}MHz>"


class CompilerProfile:
    """Per-operation code-quality multipliers for a toolchain.

    A multiplier of 1.0 means the toolchain emits the reference sequence
    for that operation; >1.0 means less optimised code.
    """

    def __init__(self, name: str, multipliers: Mapping[str, float]) -> None:
        self.name = name
        self._multipliers: Dict[str, float] = dict(multipliers)

    def factor(self, op_cost_name: str) -> float:
        return self._multipliers.get(op_cost_name, 1.0)

    def __deepcopy__(self, memo: dict) -> "CompilerProfile":
        # Process-wide toolchain constant: boot-snapshot clones share it.
        return self

    def __repr__(self) -> str:
        return f"<CompilerProfile {self.name!r}>"


#: The Linux toolchain used for the ELF lmbench build (paper §6).
GCC_4_4_1 = CompilerProfile("gcc-4.4.1", {})

#: The iOS toolchain used for the Mach-O lmbench build.  The paper observed
#: that "the Linux compiler generated more optimized code than the iOS
#: compiler" for the integer divide test; other basic ops were essentially
#: identical across the three Android-device configurations.
XCODE_4_2_1 = CompilerProfile(
    "xcode-4.2.1",
    {
        "op_int_div": 1.45,
    },
)
