"""The simulated machine.

A :class:`Machine` bundles the simulation runtime (virtual clock,
deterministic scheduler, trace, cost model) with a set of hardware device
models.  Kernels are booted *on* a machine; everything the kernel and the
simulated user space do charges time through the machine.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Union

from ..obs.observatory import Observatory, _SpanContext
from ..obs.spans import NULL_SPAN, NullSpan
from ..sim import (
    CostModel,
    FaultPlan,
    ResourceEnvelope,
    Scheduler,
    SimThread,
    Stopwatch,
    Trace,
    VirtualClock,
)
from .accelerometer import Accelerometer
from .cpu import CPU
from .display import Display
from .gpu import GPU
from .storage import FlashStorage
from .touchscreen import TouchScreen

#: Machine lifecycle states (see :meth:`Machine.panic` / ``reboot``).
MACHINE_RUNNING = "running"
MACHINE_CRASHED = "crashed"


class Machine:
    """One simulated device (a Nexus 7, an iPad mini, ...)."""

    def __init__(self, profile: "DeviceProfile") -> None:  # noqa: F821
        self.profile = profile
        self.clock = VirtualClock()
        self.scheduler = Scheduler(self.clock)
        self.trace = Trace()
        # Watchdog/ANR events from the scheduler land in the trace.
        self.scheduler.trace_hook = self.emit
        self.costs: CostModel = profile.cost_model
        #: The cost table resolved to integer picoseconds once at boot
        #: (``CostModel`` is immutable).  ``charge``'s ``times == 1`` fast
        #: path — the overwhelming majority of calls — skips the per-call
        #: float multiply and rounding entirely; the bit-identity contract
        #: is ``charge_ps(ns_to_ps(x)) == charge(x)`` (see VirtualClock).
        self._cost_ps = self.costs.compile_ps()
        self.random = random.Random(profile.seed)
        #: Deterministic fault injection: None on the zero-fault fast path
        #: (every injection point pays exactly one boolean test); install
        #: a plan with :meth:`install_fault_plan`.
        self.faults: Optional[FaultPlan] = None
        #: Observability: None on the fast path (every instrumentation
        #: site pays exactly one boolean test, mirroring ``faults``);
        #: install with :meth:`install_observatory`.
        self.obs: Optional[Observatory] = None
        #: Finite resource budget: None on the fast path (fd/mm/vfs
        #: enforcement sites pay exactly one boolean test, mirroring
        #: ``faults`` and ``obs``); install with
        #: :meth:`install_resources`.
        self.resources: Optional[ResourceEnvelope] = None
        #: Happens-before monitor (repro.sim.explore): None on the fast
        #: path (every sync-edge hook pays exactly one boolean test,
        #: mirroring ``faults``/``obs``/``resources``); install with
        #: :meth:`install_hb_monitor`.
        self.hb = None
        #: Virtual netstack (repro.net): built lazily on first use so a
        #: machine that never opens an INET socket charges nothing and
        #: allocates nothing — the same zero-cost-when-off contract as
        #: ``faults``/``obs``/``resources``.
        self._net = None
        #: Override for the netstack's on-link address (set *before* the
        #: first ``net`` access).  Lets a second machine join the same
        #: 10.0.2.0/24 segment with a distinct host IP.
        self.net_host_ip: Optional[str] = None
        #: Flight recorder (repro.obs.flightrec): None on the fast path.
        #: Deliberately NOT cleared by :meth:`reboot` — it models a
        #: pstore/ramoops region whose whole point is surviving a crash.
        self.flightrec = None
        #: Crash state.  ``crashed`` is the hot-path bool (one test at
        #: trap entry); set by :meth:`panic`, cleared by :meth:`reboot`.
        self.crashed = False
        self.state = MACHINE_RUNNING
        self.panic_reason: Optional[str] = None
        #: power_cut statistics from the most recent power-loss panic
        #: (what the recovery log reports as lost vs survived).
        self.power_cut_stats: Optional[dict] = None
        #: Incremented by every :meth:`reboot`; 0 for the first boot.
        self.boot_generation = 0

        self.cpu = CPU(profile.cpu_cores, profile.cpu_mhz)
        self.gpu = GPU(self, speed_factor=profile.gpu_speed_factor)
        self.display = Display(profile.display_width, profile.display_height)
        self.touchscreen = TouchScreen()
        self.accelerometer = Accelerometer()
        self.storage = FlashStorage(profile.flash_gb)

    # -- time accounting ----------------------------------------------------

    def charge(self, cost_name: str, times: float = 1) -> None:
        """Charge ``times`` occurrences of a named cost to the clock.

        ``times == 1`` (the hot case) uses the precompiled integer-ps
        table — identical advancement to the float path, cheaper.  Any
        other multiplier keeps the historical semantics exactly: one
        rounding of the *product* ``cost * times``.
        """
        if times == 1:
            try:
                ps = self._cost_ps[cost_name]
            except KeyError:
                # Preserve CostModel's UnknownCostError message/semantics.
                self.costs[cost_name]
                raise  # pragma: no cover - costs[...] always raises first
            self.clock.charge_ps(ps)
        else:
            self.clock.charge(self.costs[cost_name] * times)

    def charge_many(self, *cost_names: str) -> None:
        """Charge several named costs in one clock update.

        Each component was already rounded to picoseconds individually at
        boot (``compile_ps``), so the total equals N sequential
        :meth:`charge` calls bit-for-bit while paying one clock update.
        """
        table = self._cost_ps
        try:
            total = sum(table[name] for name in cost_names)
        except KeyError:
            for name in cost_names:
                self.costs[name]
            raise  # pragma: no cover - costs[...] always raises first
        self.clock.charge_ps(total)

    def cost_ps(self, cost_name: str) -> int:
        """The precompiled integer-picosecond value of a named cost.

        Subsystems hoist their per-trap costs through this at registration
        time (kernel trap entry/exit, persona checks, ABI dispatch) and
        then charge via ``clock.charge_ps`` with zero per-call lookups.
        """
        try:
            return self._cost_ps[cost_name]
        except KeyError:
            self.costs[cost_name]
            raise  # pragma: no cover - costs[...] always raises first

    def charge_ns(self, ns: float) -> None:
        self.clock.charge(ns)

    def stopwatch(self) -> Stopwatch:
        return Stopwatch(self.clock)

    @property
    def now_ns(self) -> float:
        return self.clock.now_ns

    # -- thread helpers -------------------------------------------------------

    def spawn(
        self, body: Callable[[], object], name: str, daemon: bool = False
    ) -> SimThread:
        return self.scheduler.spawn(body, name=name, daemon=daemon)

    def run(self) -> None:
        """Run until all non-daemon simulated threads complete."""
        self.scheduler.run()

    def shutdown(self) -> None:
        """Kill all simulated threads and release their OS threads."""
        self.scheduler.shutdown()

    # -- crash and reboot ------------------------------------------------------

    def panic(self, reason: str, power_loss: bool = False) -> None:
        """Take the whole machine down.  Never returns.

        Moves the machine to the CRASHED state (every subsequent trap
        raises), writes a kernel tombstone, and — for ``power_loss`` —
        tells the durable storage device the lights went out *now*, so
        dirty pages and uncommitted journal records are (seed-
        deterministically, partially) lost.  A plain panic preserves RAM:
        the reboot path writes surviving caches back before remounting.
        Unwinds via :class:`repro.sim.errors.MachinePanic`.
        """
        from ..sim.errors import MachinePanic

        if not self.crashed:
            self.crashed = True
            self.state = MACHINE_CRASHED
            self.panic_reason = reason
            if power_loss and self.storage.journal is not None:
                self.power_cut_stats = self.storage.journal.power_cut()
            kernel = getattr(self, "kernel", None)
            if kernel is not None:
                kernel.report_machine_panic(reason, power_loss=power_loss)
            else:
                self.emit("crash", "panic", reason=reason,
                          power_loss=power_loss)
        raise MachinePanic(reason)

    def reboot(self, reason: str = "reboot") -> dict:
        """Power-cycle the machine: kill every simulated thread, drop
        volatile kernel-adjacent state (netstack, fault plan — chaos does
        not survive a power cycle), and leave a clean scheduler ready for
        the next boot's threads.  The caller (``System.reboot``) rebuilds
        the kernel and user space and replays the storage journal; this
        method only models the hardware power cycle.  Virtual time keeps
        running — a reboot takes ``reboot_base`` ns of it.
        """
        info = {
            "generation": self.boot_generation + 1,
            "was_crashed": self.crashed,
            "panic_reason": self.panic_reason,
            "power_cut": self.power_cut_stats,
        }
        self.scheduler.shutdown()
        self.scheduler.reopen()
        self._net = None
        self.faults = None
        self.crashed = False
        self.state = MACHINE_RUNNING
        self.panic_reason = None
        self.power_cut_stats = None
        self.boot_generation += 1
        self.charge("reboot_base")
        self.emit(
            "machine", "reboot",
            generation=self.boot_generation, reason=reason,
        )
        return info

    # -- fault injection -------------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> FaultPlan:
        """Attach a seeded :class:`FaultPlan`; injection points consult it
        from now on.  Pass a fresh plan per run — plans carry rule state."""
        plan.attach(self)
        self.faults = plan
        return plan

    def clear_fault_plan(self) -> None:
        self.faults = None

    # -- resource budgets ---------------------------------------------------------

    def install_resources(
        self, envelope: Optional[ResourceEnvelope] = None
    ) -> ResourceEnvelope:
        """Attach a :class:`~repro.sim.resources.ResourceEnvelope`; every
        enforcement site charges it from now on.  With no envelope given,
        budgets come straight from the device profile (the machine's real
        RAM and flash, gralloc carved out as an eighth of RAM — roughly
        the ION carveout on the paper's devices)."""
        if envelope is None:
            envelope = ResourceEnvelope(
                ram_mb=self.profile.ram_mb,
                storage_mb=self.profile.flash_gb * 1024,
                gralloc_mb=max(1, self.profile.ram_mb // 8),
            )
        envelope.attach(self)
        self.resources = envelope
        return envelope

    def clear_resources(self) -> None:
        """Detach the envelope: the fast path is restored exactly."""
        self.resources = None

    # -- happens-before monitoring ------------------------------------------------

    def install_hb_monitor(self, monitor=None):
        """Attach an :class:`~repro.sim.explore.HBMonitor`: the scheduler
        and every kernel synchronization path advance vector clocks from
        now on, and shared-state accesses registered through
        ``machine.hb.access(...)`` are checked for races.  Detectors
        charge no virtual time — they observe the schedule, never steer
        it."""
        if monitor is None:
            from ..sim.explore import HBMonitor

            monitor = HBMonitor(self.scheduler)
        self.hb = monitor
        self.scheduler.hb = monitor
        return monitor

    def clear_hb_monitor(self) -> None:
        """Detach the monitor: the fast path is restored exactly."""
        self.hb = None
        self.scheduler.hb = None

    # -- observability -----------------------------------------------------------

    def install_observatory(
        self, obs: Optional[Observatory] = None
    ) -> Observatory:
        """Attach an :class:`~repro.obs.Observatory`: spans, metrics and
        the virtual-time profiler activate from this point on.  Charges
        made before installation stay unprofiled (the observatory records
        the attach baseline)."""
        obs = obs if obs is not None else Observatory()
        obs.attach(self)
        self.obs = obs
        self.clock.profiler = obs.profiler
        self.scheduler.obs = obs
        return obs

    def clear_observatory(self) -> None:
        """Detach telemetry: the fast path is restored exactly."""
        self.obs = None
        self.clock.profiler = None
        self.scheduler.obs = None

    def install_causal_tracer(self, node: Optional[str] = None):
        """Attach a :class:`~repro.obs.causal.CausalTracer` to the
        installed observatory (required).  ``node`` names this machine in
        every id the tracer mints — give the two machines of a
        cross-machine run distinct names."""
        from ..obs.causal import CausalTracer

        if self.obs is None:
            raise RuntimeError(
                "install an observatory before the causal tracer"
            )
        tracer = CausalTracer(self, node=node)
        self.obs.causal = tracer
        return tracer

    def install_flight_recorder(self, capacity: Optional[int] = None):
        """Attach a :class:`~repro.obs.flightrec.FlightRecorder` — the
        crash-surviving ring the causal tracer feeds."""
        from ..obs.flightrec import DEFAULT_CAPACITY, FlightRecorder

        recorder = FlightRecorder(
            capacity if capacity is not None else DEFAULT_CAPACITY
        )
        self.flightrec = recorder
        return recorder

    def span(
        self, subsystem: str, name: str = "", **attrs: object
    ) -> Union[_SpanContext, NullSpan]:
        """``with machine.span("ios.dyld", lib): ...`` — a hierarchical
        profiling span, or the shared no-op when observability is off."""
        obs = self.obs
        if obs is None:
            return NULL_SPAN
        return obs.span(subsystem, name, **attrs)

    # -- networking ------------------------------------------------------------

    @property
    def net(self):
        """The machine's virtual netstack, built on first access.

        Workloads that never touch INET sockets never build it, so the
        default-config golden virtual time is untouched by the subsystem's
        existence (asserted by ``tests/integration/test_golden_virtual_time``).
        """
        stack = self._net
        if stack is None:
            from ..net.netstack import DEFAULT_HOST_IP, NetStack

            stack = self._net = NetStack(
                self, host_ip=self.net_host_ip or DEFAULT_HOST_IP
            )
        return stack

    @property
    def net_if_up(self):
        """The netstack if it was ever touched, else ``None`` (no build)."""
        return self._net

    # -- tracing ---------------------------------------------------------------

    def emit(self, category: str, name: str, **detail: object) -> None:
        self.trace.emit(self.clock.now_ns, category, name, **detail)

    def __repr__(self) -> str:
        return f"<Machine {self.profile.name!r} t={self.clock.now_ns:.0f}ns>"


class DeviceProfile:
    """Static description of a device: cost model plus hardware parameters."""

    def __init__(
        self,
        name: str,
        cost_model: CostModel,
        cpu_cores: int,
        cpu_mhz: int,
        ram_mb: int,
        flash_gb: int,
        display_width: int,
        display_height: int,
        gpu_speed_factor: float = 1.0,
        seed: int = 20140301,  # ASPLOS'14 started March 1, 2014
        quirks: Optional[frozenset] = None,
        links: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.cost_model = cost_model
        self.cpu_cores = cpu_cores
        self.cpu_mhz = cpu_mhz
        self.ram_mb = ram_mb
        self.flash_gb = flash_gb
        self.display_width = display_width
        self.display_height = display_height
        self.gpu_speed_factor = gpu_speed_factor
        self.seed = seed
        #: Free-form behavioural quirk tags consulted by kernels
        #: (e.g. "xnu_select_blowup", "dyld_shared_cache").
        self.quirks = quirks or frozenset()
        #: Per-interface :class:`~repro.hw.profiles.LinkProfile` table
        #: ("lo", "wlan0", ...); ``None`` falls back to
        #: :func:`repro.hw.profiles.default_links` when the netstack is
        #: first touched.
        self.links = links

    def has_quirk(self, tag: str) -> bool:
        return tag in self.quirks

    def boot(self) -> Machine:
        return Machine(self)

    def __repr__(self) -> str:
        return f"<DeviceProfile {self.name!r}>"
