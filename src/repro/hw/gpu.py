"""GPU model: a command-stream processor.

Graphics libraries build :class:`GpuCommand` lists and submit them.  The
GPU charges virtual time per command, per vertex and per fragment block,
scaled by the device's GPU speed factor (the iPad mini's SGX543MP2 is
faster than the Nexus 7's Tegra 3, which is why 3D PassMark favours the
iPad in Fig. 6).  Fences are modelled so the Cider GLES library's broken
fence synchronisation (paper §6.3/§6.4) has somewhere real to go wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from .machine import Machine


@dataclass(frozen=True)
class GpuCommand:
    """One unit of GPU work."""

    kind: str  # "draw", "clear", "state", "fence", "blit"
    vertices: int = 0
    fragment_blocks: int = 0
    detail: Dict[str, object] = field(default_factory=dict)


class Fence:
    """A GPU-side synchronisation point."""

    _next_id = 1

    def __init__(self) -> None:
        self.fence_id = Fence._next_id
        Fence._next_id += 1
        self.signalled = False


class GPU:
    """Executes command buffers, charging time against the machine clock."""

    def __init__(self, machine: "Machine", speed_factor: float = 1.0) -> None:
        self._machine = machine
        self.speed_factor = speed_factor
        self.commands_executed = 0
        self.vertices_processed = 0
        self.fragment_blocks_shaded = 0
        self.fences_signalled = 0
        self._pending_fences: List[Fence] = []

    def submit(self, commands: List[GpuCommand]) -> None:
        """Execute a command buffer synchronously (in virtual time)."""
        costs = self._machine.costs
        total_ns = 0.0
        for cmd in commands:
            total_ns += costs["gpu_cmd"]
            if cmd.vertices:
                total_ns += costs["gpu_per_vertex"] * cmd.vertices
                self.vertices_processed += cmd.vertices
            if cmd.fragment_blocks:
                total_ns += costs["gpu_per_fragment_block"] * cmd.fragment_blocks
                self.fragment_blocks_shaded += cmd.fragment_blocks
            if cmd.kind == "fence":
                fence = cmd.detail.get("fence")
                if isinstance(fence, Fence):
                    fence.signalled = True
                    self.fences_signalled += 1
            self.commands_executed += 1
        self._machine.charge_ns(total_ns * self.speed_factor)

    def create_fence(self) -> Fence:
        fence = Fence()
        self._pending_fences.append(fence)
        return fence

    def wait_fence(self, fence: Fence, broken: bool = False) -> None:
        """CPU-side wait for a fence.

        With a working implementation the fence has already been signalled
        by the submit that queued it, so the wait is nearly free.  The
        Cider prototype's GLES library had incorrect fence support
        (``broken=True``): every wait degenerates into a fixed stall.
        """
        if broken or not fence.signalled:
            self._machine.charge("fence_stall")
            fence.signalled = True

    def __repr__(self) -> str:
        return (
            f"<GPU x{self.speed_factor} cmds={self.commands_executed} "
            f"verts={self.vertices_processed}>"
        )
