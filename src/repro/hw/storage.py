"""Flash storage model.

Byte-transfer costs live in the cost model (``storage_read_per_kb`` /
``storage_write_per_kb``); this object tracks capacity and usage
statistics so tests and the PassMark storage workload can assert on the
traffic that actually reached the device.
"""

from __future__ import annotations


class FlashStorage:
    """eMMC/NAND storage device."""

    def __init__(self, capacity_gb: int) -> None:
        self.capacity_gb = capacity_gb
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0

    def record_read(self, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.read_ops += 1

    def record_write(self, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.write_ops += 1

    def __repr__(self) -> str:
        return (
            f"<FlashStorage {self.capacity_gb}GB r={self.bytes_read} "
            f"w={self.bytes_written}>"
        )
