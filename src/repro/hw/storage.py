"""Flash storage model: traffic statistics plus a durable block layer.

Two layers live here:

* :class:`FlashStorage` — the raw eMMC/NAND device.  Byte-transfer costs
  live in the cost model (``storage_read_per_kb`` / ``storage_write_per_kb``);
  this object tracks capacity and usage statistics so tests and the
  PassMark storage workload can assert on the traffic that actually
  reached the device.

* :class:`JournalDevice` — an optional deterministic durability layer
  (``storage.enable_journal(seed)``) modelling what a crash can and
  cannot destroy:

  - a **dirty page cache**: file writes mutate VFS inodes in RAM and mark
    4KB blocks dirty; nothing reaches "flash" until a sync;
  - a **metadata write-ahead journal**: namespace operations
    (create/mkdir/unlink/rmdir/rename/truncate-size) append records to a
    volatile tail which ``fsync``/``fdatasync``/``sync`` commit to the
    durable journal;
  - a **power-cut model**: on ``FaultOutcome.power_loss()`` a seeded,
    reorderable writeback decides which dirty pages and which journal
    tail prefix made it to flash before the lights went out — same seed,
    same workload ⇒ byte-identical loss;
  - **remount with journal replay** and an **fsck invariant checker**
    consumed by :meth:`repro.cider.system.System.reboot`.

Zero-cost-when-off discipline: with the journal enabled but never
synced, the bookkeeping above charges *no* virtual time — only the sync
family, replay and fsck charge (see the durable-storage section of
:data:`repro.sim.costs.DEFAULT_COSTS`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

#: The block layer's page size.  Dirty tracking, flush charges and the
#: power-cut writeback model all work in these units.
BLOCK_SIZE = 4096


class FlashStorage:
    """eMMC/NAND storage device."""

    def __init__(self, capacity_gb: int) -> None:
        self.capacity_gb = capacity_gb
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        #: Durable block layer; None (the default) keeps PR 1-5 behaviour:
        #: all file state is RAM-resident and nothing survives a crash.
        self.journal: Optional[JournalDevice] = None

    def enable_journal(self, seed: int = 0) -> "JournalDevice":
        if self.journal is None:
            self.journal = JournalDevice(self, seed)
        return self.journal

    def record_read(self, nbytes: int) -> None:
        self.bytes_read += nbytes
        self.read_ops += 1

    def record_write(self, nbytes: int) -> None:
        self.bytes_written += nbytes
        self.write_ops += 1

    def __repr__(self) -> str:
        return (
            f"<FlashStorage {self.capacity_gb}GB r={self.bytes_read} "
            f"w={self.bytes_written}>"
        )


class JournalDevice:
    """Deterministic durable block layer + metadata write-ahead journal.

    State is split by what a power cut destroys:

    *Durable* (survives anything): ``media_meta`` (the last checkpointed
    namespace: canonical path -> ("file", ino) | ("dir", 0)),
    ``media_journal`` (committed, not-yet-replayed records),
    ``media_blocks`` (ino -> {block_index: bytes}), ``media_sizes``
    (ino -> journalled file size).

    *Volatile* (RAM; lost on power cut): ``tail`` (journal records not
    yet committed), ``dirty`` (ino -> set of dirty block indices),
    ``inodes`` (ino -> live ``RegularFile``, the page-cache backref used
    to read bytes at flush time), ``known_sizes`` (size-record
    coalescing state).

    Only files created *after* the journal is enabled are tracked
    (assigned a non-zero ino).  Everything installed before — the boot
    image: /system, /bin, base libraries — has ``ino == 0`` and is
    recreated by the reboot recipe rather than replayed, exactly like a
    read-only system partition.

    Journal record shapes (tuples; first element is the opcode)::

        ("create", path, ino)   ("mkdir", path)
        ("unlink", path)        ("rmdir", path)
        ("rename", old, new)    ("size", ino, nbytes)
    """

    def __init__(self, storage: FlashStorage, seed: int = 0) -> None:
        self.storage = storage
        self.seed = seed
        self.rng = random.Random(seed)
        #: True while remount materialises the tree: VFS hooks must not
        #: re-journal (or charge for) replayed operations.
        self.replaying = False
        self.next_ino = 1
        # -- durable state --------------------------------------------------
        self.media_meta: Dict[str, Tuple[str, int]] = {}
        self.media_journal: List[tuple] = []
        self.media_blocks: Dict[int, Dict[int, bytes]] = {}
        self.media_sizes: Dict[int, int] = {}
        # -- pstore region --------------------------------------------------
        # The flight-recorder tail journaled at panic time.  Like ramoops
        # it sits outside the data path: a power cut destroys the volatile
        # journal tail below but never this region (``power_cut`` does not
        # touch it), so recovery can read the pre-crash event tail back.
        self.pstore: List[str] = []
        # -- volatile state -------------------------------------------------
        self.tail: List[tuple] = []
        self.dirty: Dict[int, Set[int]] = {}
        self.inodes: Dict[int, object] = {}
        self.known_sizes: Dict[int, int] = {}
        # -- counters -------------------------------------------------------
        self.commits = 0
        self.records_committed = 0
        self.pages_flushed = 0
        self.power_cuts = 0
        self.remounts = 0

    # -- ino allocation ----------------------------------------------------

    def assign_ino(self, inode) -> int:
        inode.ino = self.next_ino
        self.next_ino += 1
        return inode.ino

    # -- metadata WAL (volatile tail appends; charge nothing) --------------

    def log_create(self, path: str, inode) -> None:
        ino = inode.ino or self.assign_ino(inode)
        self.inodes[ino] = inode
        self.known_sizes[ino] = len(inode.data)
        self.tail.append(("create", path, ino))

    def log_mkdir(self, path: str) -> None:
        self.tail.append(("mkdir", path))

    def log_unlink(self, path: str, inode=None) -> None:
        self.tail.append(("unlink", path))
        if inode is not None:
            self.forget(inode)

    def log_rmdir(self, path: str) -> None:
        self.tail.append(("rmdir", path))

    def log_rename(self, old: str, new: str, replaced=None) -> None:
        self.tail.append(("rename", old, new))
        if replaced is not None:
            self.forget(replaced)

    def note_size(self, ino: int, size: int) -> None:
        """Journal a size change, coalescing consecutive records for the
        same ino (a loop of appends yields one record, not thousands)."""
        if self.known_sizes.get(ino) == size:
            return
        self.known_sizes[ino] = size
        tail = self.tail
        if tail and tail[-1][0] == "size" and tail[-1][1] == ino:
            tail[-1] = ("size", ino, size)
        else:
            tail.append(("size", ino, size))

    def truncate(self, inode) -> None:
        """O_TRUNC: in-RAM content is gone, so pending dirty pages are
        meaningless; the size record makes the truncation durable once
        synced (stale durable blocks are pruned at replay)."""
        ino = inode.ino
        self.dirty.pop(ino, None)
        self.note_size(ino, 0)

    def forget(self, inode) -> None:
        """Stop write-back for an unlinked/replaced inode.  Its durable
        blocks stay on flash until remount reclaims them as orphans."""
        ino = getattr(inode, "ino", 0)
        if ino:
            self.dirty.pop(ino, None)

    # -- dirty page cache --------------------------------------------------

    def mark_dirty(self, inode, start: int, end: int) -> None:
        ino = inode.ino
        self.inodes[ino] = inode
        blocks = self.dirty.setdefault(ino, set())
        last = max(start, end - 1)
        for block in range(start // BLOCK_SIZE, last // BLOCK_SIZE + 1):
            blocks.add(block)

    @property
    def dirty_pages(self) -> int:
        return sum(len(blocks) for blocks in self.dirty.values())

    @property
    def pending_records(self) -> int:
        return len(self.tail)

    # -- the sync family ---------------------------------------------------

    def fsync(self, ino: int) -> Tuple[int, int]:
        """Flush one file's dirty pages and commit the whole journal tail
        (metadata ordering: a committed create may reference directories
        whose mkdir records precede it).  Returns (pages, records)."""
        pages = self._flush_ino(ino)
        records = self._commit_tail(len(self.tail))
        return pages, records

    def fdatasync(self, ino: int) -> Tuple[int, int]:
        """Flush the file's pages but commit only the tail prefix up to
        the last record mentioning this ino (data + its own metadata, not
        everyone else's — the fdatasync contract)."""
        pages = self._flush_ino(ino)
        upto = 0
        for index, record in enumerate(self.tail):
            if self._touches(record, ino):
                upto = index + 1
        records = self._commit_tail(upto)
        return pages, records

    def sync_all(self) -> Tuple[int, int]:
        pages = 0
        for ino in sorted(self.dirty):
            pages += self._flush_ino(ino)
        records = self._commit_tail(len(self.tail))
        return pages, records

    @staticmethod
    def _touches(record: tuple, ino: int) -> bool:
        op = record[0]
        if op == "create":
            return record[2] == ino
        if op == "size":
            return record[1] == ino
        return False

    def _flush_ino(self, ino: int) -> int:
        blocks = self.dirty.pop(ino, None)
        if not blocks:
            return 0
        inode = self.inodes.get(ino)
        if inode is None:
            return 0
        dest = self.media_blocks.setdefault(ino, {})
        data = inode.data
        flushed = 0
        for block in sorted(blocks):
            chunk = bytes(data[block * BLOCK_SIZE:(block + 1) * BLOCK_SIZE])
            dest[block] = chunk
            self.storage.record_write(len(chunk))
            flushed += 1
        self.pages_flushed += flushed
        return flushed

    def _commit_tail(self, upto: int) -> int:
        if upto <= 0:
            return 0
        committed = self.tail[:upto]
        del self.tail[:upto]
        self.media_journal.extend(committed)
        self.commits += 1
        self.records_committed += len(committed)
        return len(committed)

    # -- power loss --------------------------------------------------------

    def power_cut(self) -> Dict[str, int]:
        """The lights go out mid-writeback.

        The journal is sequential, so a seed-determined *prefix* of the
        tail reaches flash; the data writeback is reorderable, so a
        seed-determined shuffled *subset* of dirty pages lands.  All
        remaining volatile state is then lost.  Same seed + same workload
        ⇒ byte-identical survivors.
        """
        rng = self.rng
        tail_len = len(self.tail)
        survived_records = rng.randint(0, tail_len) if tail_len else 0
        self._commit_tail(survived_records)
        records_lost = len(self.tail)
        self.tail = []

        pending = [
            (ino, block)
            for ino in sorted(self.dirty)
            for block in sorted(self.dirty[ino])
        ]
        rng.shuffle(pending)
        survived_pages = rng.randint(0, len(pending)) if pending else 0
        flushed = 0
        for ino, block in pending[:survived_pages]:
            inode = self.inodes.get(ino)
            if inode is None:
                continue
            chunk = bytes(
                inode.data[block * BLOCK_SIZE:(block + 1) * BLOCK_SIZE]
            )
            self.media_blocks.setdefault(ino, {})[block] = chunk
            self.storage.record_write(len(chunk))
            flushed += 1
        pages_lost = len(pending) - flushed
        self.dirty = {}
        self.inodes = {}
        self.known_sizes = {}
        self.power_cuts += 1
        return {
            "records_survived": survived_records,
            "records_lost": records_lost,
            "pages_survived": flushed,
            "pages_lost": pages_lost,
        }

    # -- remount: replay + materialise ------------------------------------

    def remount(self, vfs) -> Dict[str, int]:
        """Bring the durable state back up under a freshly built VFS.

        Clean reboot / plain panic (RAM-preserving): any surviving
        volatile state is written back first (an "emergency sync"), which
        is exactly why power loss — and only power loss — loses data.
        Then the committed journal is applied onto ``media_meta``, fully
        consuming it; orphaned blocks (unlinked files, stale tails past a
        truncation) are reclaimed; and the checkpointed namespace is
        materialised into the live tree.  Caller charges
        ``remount_replay_record`` per record applied.
        """
        emergency_pages, emergency_records = 0, 0
        if self.tail or self.dirty:
            emergency_pages, emergency_records = self.sync_all()
        applied = len(self.media_journal)
        for record in self.media_journal:
            self._apply_meta(record)
        self.media_journal = []
        orphan_inodes, orphan_blocks = self._reclaim()
        files = dirs = 0
        self.inodes = {}
        self.known_sizes = {}
        self.dirty = {}
        self.replaying = True
        try:
            # Lexicographic order visits parents before children ("/a" is
            # a strict prefix of "/a/b").
            for path in sorted(self.media_meta):
                kind, ino = self.media_meta[path]
                if kind == "dir":
                    self._materialize_dir(vfs, path)
                    dirs += 1
                else:
                    self._materialize_file(vfs, path, ino)
                    files += 1
        finally:
            self.replaying = False
        self.remounts += 1
        return {
            "records_replayed": applied,
            "emergency_pages": emergency_pages,
            "emergency_records": emergency_records,
            "orphan_inodes": orphan_inodes,
            "orphan_blocks": orphan_blocks,
            "files": files,
            "dirs": dirs,
        }

    def _apply_meta(self, record: tuple) -> None:
        op = record[0]
        meta = self.media_meta
        if op == "create":
            meta[record[1]] = ("file", record[2])
            self.media_sizes.setdefault(record[2], 0)
        elif op == "mkdir":
            meta[record[1]] = ("dir", 0)
        elif op in ("unlink", "rmdir"):
            meta.pop(record[1], None)
        elif op == "rename":
            old, new = record[1], record[2]
            entry = meta.pop(old, None)
            if entry is not None:
                prefix = old + "/"
                moved = [p for p in meta if p.startswith(prefix)]
                for path in moved:
                    meta[new + path[len(old):]] = meta.pop(path)
                meta[new] = entry
        elif op == "size":
            self.media_sizes[record[1]] = record[2]

    def _reclaim(self) -> Tuple[int, int]:
        """Drop blocks no namespace entry references, plus per-file stale
        blocks past the journalled size (fsck's no-orphans invariant)."""
        referenced = {
            ino for kind, ino in self.media_meta.values() if kind == "file"
        }
        orphan_inodes = sorted(set(self.media_blocks) - referenced)
        orphan_blocks = 0
        for ino in orphan_inodes:
            orphan_blocks += len(self.media_blocks.pop(ino))
            self.media_sizes.pop(ino, None)
        for ino in sorted(self.media_blocks):
            size = self.media_sizes.get(ino, 0)
            limit = -(-size // BLOCK_SIZE)
            stale = [b for b in self.media_blocks[ino] if b >= limit]
            for block in stale:
                del self.media_blocks[ino][block]
            orphan_blocks += len(stale)
        for ino in sorted(set(self.media_sizes) - referenced):
            del self.media_sizes[ino]
        return len(orphan_inodes), orphan_blocks

    def _walk_to_parent(self, vfs, path: str):
        """Return (parent_dir, leaf_name), creating intermediate
        directories directly (replay bypasses charging and journaling)."""
        from ..kernel.vfs import Directory

        parts = vfs.split(path)
        node = vfs.root
        for part in parts[:-1]:
            child = node.entries.get(part)
            if child is None:
                child = Directory()
                node.link(part, child)
            node = child
        return node, parts[-1]

    def _materialize_dir(self, vfs, path: str) -> None:
        from ..kernel.vfs import Directory

        parent, name = self._walk_to_parent(vfs, path)
        if name not in parent.entries:
            parent.link(name, Directory())

    def _materialize_file(self, vfs, path: str, ino: int) -> None:
        from ..kernel.vfs import RegularFile

        parent, name = self._walk_to_parent(vfs, path)
        size = self.media_sizes.get(ino, 0)
        data = bytearray(size)
        for block, chunk in self.media_blocks.get(ino, {}).items():
            start = block * BLOCK_SIZE
            take = min(len(chunk), max(0, size - start))
            if take:
                data[start:start + take] = chunk[:take]
        node = parent.entries.get(name)
        if not isinstance(node, RegularFile):
            node = RegularFile()
            parent.link(name, node)
        # A reinstalled boot binary keeps its binary_image; replay only
        # restores the durable byte content and identity.
        node.data = data
        node.ino = ino
        self.inodes[ino] = node
        self.known_sizes[ino] = size
        self.next_ino = max(self.next_ino, ino + 1)

    # -- fsck helpers ------------------------------------------------------

    def referenced_inos(self) -> Dict[int, List[str]]:
        refs: Dict[int, List[str]] = {}
        for path, (kind, ino) in sorted(self.media_meta.items()):
            if kind == "file":
                refs.setdefault(ino, []).append(path)
        return refs

    def __repr__(self) -> str:
        return (
            f"<JournalDevice seed={self.seed} entries={len(self.media_meta)} "
            f"pending={len(self.tail)} dirty={self.dirty_pages}>"
        )
