"""Accelerometer hardware.

CiderPress forwards accelerometer samples to iOS apps alongside touch
input (paper §3).  The model mirrors :class:`TouchScreen`: samples are
injected by tests/examples and drained by the kernel driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class AccelSample:
    """One 3-axis sample in m/s^2."""

    ax: float
    ay: float
    az: float


class Accelerometer:
    """Hardware sample FIFO."""

    def __init__(self) -> None:
        self._queue: List[AccelSample] = []
        self._listener: Optional[Callable[[AccelSample], None]] = None
        self.samples_injected = 0

    def attach_driver(self, listener: Callable[[AccelSample], None]) -> None:
        self._listener = listener
        for sample in self._queue:
            listener(sample)
        self._queue.clear()

    def inject(self, sample: AccelSample) -> None:
        self.samples_injected += 1
        if self._listener is not None:
            self._listener(sample)
        else:
            self._queue.append(sample)

    def tilt(self, ax: float, ay: float, az: float = 9.81) -> None:
        self.inject(AccelSample(ax, ay, az))
