"""Display and pixel buffers.

Real framebuffers hold megabytes of pixels; the simulation represents a
buffer as a coarse character grid onto which drawing primitives render.
This keeps window memory, composition, and "screenshots" (ASCII dumps used
by the examples, standing in for the paper's Figure 4) cheap but fully
observable: tests can assert on what actually reached the panel.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: One character cell covers this many device pixels.
CELL_W_PX = 20
CELL_H_PX = 40


class PixelBuffer:
    """A drawable buffer addressed in device pixels, backed by a char grid."""

    def __init__(self, width_px: int, height_px: int, fill: str = " ") -> None:
        if width_px <= 0 or height_px <= 0:
            raise ValueError("buffer dimensions must be positive")
        self.width_px = width_px
        self.height_px = height_px
        self.cols = max(1, width_px // CELL_W_PX)
        self.rows = max(1, height_px // CELL_H_PX)
        self._grid: List[List[str]] = [
            [fill] * self.cols for _ in range(self.rows)
        ]

    @property
    def size_bytes(self) -> int:
        """Nominal size of the real buffer (RGBA8888)."""
        return self.width_px * self.height_px * 4

    def _cell(self, x_px: float, y_px: float) -> Tuple[int, int]:
        col = min(self.cols - 1, max(0, int(x_px // CELL_W_PX)))
        row = min(self.rows - 1, max(0, int(y_px // CELL_H_PX)))
        return col, row

    def clear(self, ch: str = " ") -> None:
        for row in self._grid:
            for col in range(self.cols):
                row[col] = ch

    def fill_rect(self, x: float, y: float, w: float, h: float, ch: str) -> None:
        c0, r0 = self._cell(x, y)
        c1, r1 = self._cell(x + max(0.0, w - 1), y + max(0.0, h - 1))
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                self._grid[row][col] = ch

    def draw_text(self, x: float, y: float, text: str) -> None:
        col, row = self._cell(x, y)
        for offset, ch in enumerate(text):
            if col + offset >= self.cols:
                break
            self._grid[row][col + offset] = ch

    def blit(self, src: "PixelBuffer", x: float, y: float) -> None:
        c0, r0 = self._cell(x, y)
        for src_row in range(src.rows):
            dst_row = r0 + src_row
            if dst_row >= self.rows:
                break
            for src_col in range(src.cols):
                dst_col = c0 + src_col
                if dst_col >= self.cols:
                    break
                ch = src._grid[src_row][src_col]
                if ch != " ":
                    self._grid[dst_row][dst_col] = ch

    def cell_at(self, x_px: float, y_px: float) -> str:
        col, row = self._cell(x_px, y_px)
        return self._grid[row][col]

    def to_text(self) -> str:
        border = "+" + "-" * self.cols + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in self._grid)
        return f"{border}\n{body}\n{border}"

    def snapshot(self) -> "PixelBuffer":
        copy = PixelBuffer(self.width_px, self.height_px)
        copy._grid = [list(row) for row in self._grid]
        return copy


class Display:
    """The panel.  SurfaceFlinger posts composed frames here."""

    def __init__(self, width_px: int, height_px: int) -> None:
        self.width_px = width_px
        self.height_px = height_px
        self.frames_posted = 0
        self._front: Optional[PixelBuffer] = None

    def post(self, frame: PixelBuffer) -> None:
        self._front = frame.snapshot()
        self.frames_posted += 1

    @property
    def front_buffer(self) -> Optional[PixelBuffer]:
        return self._front

    def screenshot(self) -> str:
        if self._front is None:
            return "<display off>"
        return self._front.to_text()
