"""Open files and descriptor tables.

The open-file layer sits between syscalls and inodes: each successful
``open`` produces an :class:`OpenFile` (offset, flags, per-open state)
which descriptor tables reference.  ``fork`` shares open-file objects
between parent and child — offsets are shared, exactly as POSIX requires.

Every open file is *pollable*: it reports instantaneous read/write
readiness and exposes wait queues so ``select`` and blocking reads can
park on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from ..sim import WaitQueue
from .errno import EBADF, EINVAL, EISDIR, EMFILE, ENOSPC, SyscallError
from .vfs import Directory, RegularFile

if TYPE_CHECKING:
    from ..hw.machine import Machine
    from .process import Process

# open(2) flag bits (Linux ARM values where they matter).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


class OpenFile:
    """Base open-file object (one per successful open)."""

    def __init__(self, machine: "Machine", flags: int = O_RDONLY) -> None:
        self.machine = machine
        self.flags = flags
        self.refcount = 1
        self.read_waitq = WaitQueue(f"{type(self).__name__}.read")
        self.write_waitq = WaitQueue(f"{type(self).__name__}.write")

    # readiness ---------------------------------------------------------------
    def poll_readable(self) -> bool:
        return True

    def poll_writable(self) -> bool:
        return True

    # I/O -----------------------------------------------------------------------
    def read(self, nbytes: int) -> bytes:
        raise SyscallError(EINVAL, "not readable")

    def write(self, data: bytes) -> int:
        raise SyscallError(EINVAL, "not writable")

    def lseek(self, offset: int, whence: int) -> int:
        raise SyscallError(EINVAL, "not seekable")

    # lifecycle -------------------------------------------------------------------
    def incref(self) -> "OpenFile":
        self.refcount += 1
        return self

    def decref(self) -> None:
        self.refcount -= 1
        if self.refcount == 0:
            self.on_last_close()

    def on_last_close(self) -> None:
        """Subclass hook (pipes signal EOF, sockets tear down, ...)."""


class RegularHandle(OpenFile):
    """An open regular file."""

    def __init__(
        self, machine: "Machine", inode: RegularFile, flags: int
    ) -> None:
        super().__init__(machine, flags)
        self.inode = inode
        self.offset = inode.size_bytes if flags & O_APPEND else 0
        if flags & O_TRUNC and flags & (O_WRONLY | O_RDWR):
            inode.data = bytearray()
            if inode.storage_reserved:
                res = machine.resources
                if res is not None:
                    res.release_storage(inode.storage_reserved)
                inode.storage_reserved = 0
            if inode.ino:
                journal = machine.storage.journal
                if journal is not None and not journal.replaying:
                    journal.truncate(inode)

    def read(self, nbytes: int) -> bytes:
        if self.flags & O_WRONLY:
            raise SyscallError(EBADF, "opened write-only")
        self.machine.charge("read_base")
        data = bytes(self.inode.data[self.offset : self.offset + nbytes])
        if data:
            kb = max(1, len(data) // 1024)
            self.machine.charge("file_read_per_kb", kb)
            self.machine.charge("storage_read_per_kb", kb)
            self.machine.storage.record_read(len(data))
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        if not self.flags & (O_WRONLY | O_RDWR):
            raise SyscallError(EBADF, "opened read-only")
        machine = self.machine
        if machine.faults is not None:
            # ``vfs.write``: forced scarcity verdicts (ENOSPC and friends)
            # without needing a full storage budget.
            outcome = machine.faults.check("vfs.write", size=len(data))
            if outcome is not None:
                if outcome.kind == "delay":
                    machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        "fault injected: write",
                    )
                else:  # kern/signal degrade to ENOSPC at a scarcity point
                    raise SyscallError(ENOSPC, "fault injected: write")
        growth = self.offset + len(data) - len(self.inode.data)
        if growth > 0:
            res = machine.resources
            if res is not None:
                if not res.reserve_storage(growth):
                    raise SyscallError(
                        ENOSPC, f"no space left on device ({growth} bytes)"
                    )
                self.inode.storage_reserved += growth
        self.machine.charge("write_base")
        if data:
            kb = max(1, len(data) // 1024)
            self.machine.charge("file_write_per_kb", kb)
            self.machine.charge("storage_write_per_kb", kb)
            self.machine.storage.record_write(len(data))
        end = self.offset + len(data)
        if end > len(self.inode.data):
            self.inode.data.extend(b"\x00" * (end - len(self.inode.data)))
        self.inode.data[self.offset : end] = data
        start, self.offset = self.offset, end
        if data and self.inode.ino:
            # Dirty-page bookkeeping only (RAM state; charges nothing):
            # the bytes reach "flash" at fsync/fdatasync/sync time, or
            # survive a power cut only if the seeded writeback got there.
            journal = machine.storage.journal
            if journal is not None:
                journal.mark_dirty(self.inode, start, end)
                journal.note_size(self.inode.ino, len(self.inode.data))
        return len(data)

    def lseek(self, offset: int, whence: int) -> int:
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = self.inode.size_bytes + offset
        else:
            raise SyscallError(EINVAL, f"whence={whence}")
        if new < 0:
            raise SyscallError(EINVAL, "negative offset")
        self.offset = new
        return new


class DeviceHandle(OpenFile):
    """An open device node; I/O delegates to the driver."""

    def __init__(self, machine: "Machine", driver: object, flags: int) -> None:
        super().__init__(machine, flags)
        self.driver = driver

    def poll_readable(self) -> bool:
        poll = getattr(self.driver, "poll_readable", None)
        return poll(self) if poll else True

    def read(self, nbytes: int) -> bytes:
        return self.driver.read(self, nbytes)

    def write(self, data: bytes) -> int:
        return self.driver.write(self, data)

    def ioctl(self, request: int, arg: object) -> object:
        ioctl = getattr(self.driver, "ioctl", None)
        if ioctl is None:
            raise SyscallError(EINVAL, "driver has no ioctl")
        return ioctl(self, request, arg)


class DirectoryHandle(OpenFile):
    """An open directory (readdir only)."""

    def __init__(self, machine: "Machine", inode: Directory) -> None:
        super().__init__(machine, O_RDONLY)
        self.inode = inode
        self._cursor = 0

    def read(self, nbytes: int) -> bytes:
        raise SyscallError(EISDIR, "read on directory")

    def readdir(self) -> Optional[str]:
        names = self.inode.names()
        if self._cursor >= len(names):
            return None
        name = names[self._cursor]
        self._cursor += 1
        return name


class FDTable:
    """A process's descriptor table.

    ``nofile_limit`` is the process's effective ``RLIMIT_NOFILE`` soft
    limit (kept in sync by the setrlimit trap); :meth:`install` is the
    single checked allocation path every new descriptor flows through —
    opens, pipes, sockets, accepts and dups all surface EMFILE here.
    """

    MAX_FDS = 1024

    def __init__(self) -> None:
        self._fds: Dict[int, OpenFile] = {}
        self.nofile_limit = self.MAX_FDS

    def install(self, open_file: OpenFile) -> int:
        if len(self._fds) >= self.nofile_limit:
            raise SyscallError(
                EMFILE, f"too many open files (RLIMIT_NOFILE={self.nofile_limit})"
            )
        for fd in range(self.MAX_FDS):
            if fd not in self._fds:
                self._fds[fd] = open_file
                return fd
        raise SyscallError(EMFILE, "fd table full")

    def get(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise SyscallError(EBADF, f"fd {fd}") from None

    def close(self, fd: int) -> None:
        open_file = self.get(fd)
        del self._fds[fd]
        open_file.decref()

    def dup(self, fd: int) -> int:
        return self.install(self.get(fd).incref())

    def dup2(self, fd: int, newfd: int) -> int:
        open_file = self.get(fd)
        if newfd == fd:
            return newfd
        if newfd in self._fds:
            self.close(newfd)
        self._fds[newfd] = open_file.incref()
        return newfd

    def fork_copy(self) -> "FDTable":
        child = FDTable()
        child._fds = {fd: f.incref() for fd, f in self._fds.items()}
        child.nofile_limit = self.nofile_limit
        return child

    def close_all(self) -> None:
        for fd in list(self._fds):
            self.close(fd)

    def open_fds(self) -> List[int]:
        return sorted(self._fds)

    def __len__(self) -> int:
        return len(self._fds)


def fd_alloc(process: "Process", open_file: OpenFile) -> int:
    """THE checked descriptor-allocation helper.

    Every syscall path that mints a new descriptor — ``open``, ``pipe``,
    ``socket``, ``accept``, ``socketpair`` (see
    :mod:`repro.kernel.pipes` / :mod:`repro.kernel.unix_sockets`) — calls
    this so ``RLIMIT_NOFILE`` is enforced uniformly: one place returns
    EMFILE, no allocation path can forget the check.
    """
    return process.fd_table.install(open_file)
