"""Crash containment records ("tombstones").

When a foreign (or domestic) process dies abnormally — a fatal signal, an
escaped :class:`SyscallError`, or a Python exception inside a simulated
syscall handler — the kernel writes a :class:`CrashReport` tombstone
rather than letting the failure take the machine down.  The report
captures enough state to debug the simulated crash: pid, process name,
persona, signal, the faulting syscall (if any) and a formatted traceback
when a host-level exception was involved.

The list of reports lives on the kernel (``kernel.crash_reports``); one
``crash`` trace event is emitted per tombstone so tests can assert
containment without keeping full reports around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class CrashReport:
    """One tombstone."""

    timestamp_ns: float
    pid: int
    name: str
    persona: str
    signum: int
    reason: str
    #: Syscall in flight when the crash happened, if known.
    syscall: Optional[str] = None
    #: Host traceback for Python-level oopses (satellite: tracebacks are
    #: preserved in the trace, never re-raised into the simulation).
    traceback: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        head = (
            f"*** crash pid={self.pid} name={self.name!r} "
            f"persona={self.persona} signal={self.signum} "
            f"reason={self.reason}"
        )
        if self.syscall:
            head += f" syscall={self.syscall}"
        if self.traceback:
            head += "\n" + self.traceback.rstrip()
        return head

    def __repr__(self) -> str:
        return f"<CrashReport pid={self.pid} sig={self.signum} {self.reason!r}>"
