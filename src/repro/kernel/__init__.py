"""The simulated domestic kernel (Linux-like core, personality-agnostic)."""

from . import errno
from .devices import Device, DeviceManager, EvdevDriver, FramebufferDriver
from .errno import SyscallError
from .files import (
    FDTable,
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_NONBLOCK,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    OpenFile,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)
from .kernel import Kernel
from .loader import BinfmtHandler, ElfLoader, LibrarySearchPath, LoaderChain
from .mm import PAGE_SIZE, AddressSpace, VMA
from .process import (
    KThread,
    Process,
    ProcessExited,
    ProcessManager,
    ThreadExited,
    UserContext,
)
from .signals import SigAction, SigInfo, SignalState
from .syscalls_linux import LinuxABI
from .vfs import VFS, DeviceNode, Directory, RegularFile

__all__ = [
    "errno",
    "Device",
    "DeviceManager",
    "EvdevDriver",
    "FramebufferDriver",
    "SyscallError",
    "FDTable",
    "O_APPEND",
    "O_CREAT",
    "O_EXCL",
    "O_NONBLOCK",
    "O_RDONLY",
    "O_RDWR",
    "O_TRUNC",
    "O_WRONLY",
    "OpenFile",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "Kernel",
    "BinfmtHandler",
    "ElfLoader",
    "LibrarySearchPath",
    "LoaderChain",
    "PAGE_SIZE",
    "AddressSpace",
    "VMA",
    "KThread",
    "Process",
    "ProcessExited",
    "ProcessManager",
    "ThreadExited",
    "UserContext",
    "SigAction",
    "SigInfo",
    "SignalState",
    "LinuxABI",
    "VFS",
    "DeviceNode",
    "Directory",
    "RegularFile",
]
