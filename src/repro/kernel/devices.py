"""The Linux device-driver framework.

Drivers register devices through :meth:`DeviceManager.device_add`, which
creates the ``/dev`` node — and, crucially for Cider, fires the
*device-add hook*: the small hook the paper describes (§5.1) that lets the
duct-taped I/O Kit create a registry entry (device-class instance) for
every registered Linux device, so iOS user space can discover Android
hardware through the I/O Kit registry.

Includes the standard character devices (`/dev/zero`, `/dev/null`) used by
lmbench, and evdev-style input devices fed by the hardware models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional

from collections import deque

from ..sim import WaitQueue
from .errno import EAGAIN, SyscallError
from .files import DeviceHandle

if TYPE_CHECKING:
    from ..hw.machine import Machine


class Device:
    """A registered device: a name, a driver, and a /dev node."""

    def __init__(self, name: str, driver: object, dev_class: str) -> None:
        self.name = name
        self.driver = driver
        self.dev_class = dev_class  # "mem", "input", "graphics", ...

    def __repr__(self) -> str:
        return f"<Device {self.name!r} class={self.dev_class!r}>"


class DeviceManager:
    """Kernel-side device registry."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self._devices: Dict[str, Device] = {}
        #: Cider's hook point: called for every device_add so duct-taped
        #: I/O Kit can mirror Linux devices into its registry.
        self.device_add_hooks: List[Callable[[Device], None]] = []

    def device_add(
        self, name: str, driver: object, dev_class: str = "misc"
    ) -> Device:
        device = Device(name, driver, dev_class)
        self._devices[name] = device
        for hook in self.device_add_hooks:
            hook(device)
        return device

    def get(self, name: str) -> Optional[Device]:
        return self._devices.get(name)

    def all_devices(self) -> List[Device]:
        return list(self._devices.values())


class ZeroDriver:
    """/dev/zero."""

    def read(self, handle: DeviceHandle, nbytes: int) -> bytes:
        handle.machine.charge("read_base")
        return b"\x00" * nbytes

    def write(self, handle: DeviceHandle, data: bytes) -> int:
        handle.machine.charge("write_base")
        return len(data)


class NullDriver:
    """/dev/null."""

    def read(self, handle: DeviceHandle, nbytes: int) -> bytes:
        handle.machine.charge("read_base")
        return b""

    def write(self, handle: DeviceHandle, data: bytes) -> int:
        handle.machine.charge("write_base")
        return len(data)


class EvdevDriver:
    """An evdev-style input event device.

    The kernel-side driver is attached to a hardware event source
    (touch panel, accelerometer); each hardware event lands in a FIFO
    that user space drains by reading the /dev/input node.  Reads return
    *event objects* (the simulation's stand-in for input_event structs).
    """

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self._queue: Deque[object] = deque()
        self.event_waitq = WaitQueue("evdev")

    # hardware side ---------------------------------------------------------
    def push_event(self, event: object) -> None:
        self._queue.append(event)
        self.event_waitq.wake_all()

    # user side --------------------------------------------------------------
    def poll_readable(self, handle: DeviceHandle) -> bool:
        return bool(self._queue)

    def read_event(self, handle: DeviceHandle) -> object:
        """Blocking read of one event object."""
        sched = self._machine.scheduler
        while not self._queue:
            if handle.flags & 0o4000:
                raise SyscallError(EAGAIN, "no input events")
            self._machine.kernel.wait_interruptible(self.event_waitq)
        self._machine.charge("input_event_read")
        return self._queue.popleft()

    def read(self, handle: DeviceHandle, nbytes: int) -> bytes:
        raise SyscallError(EAGAIN, "use read_event on evdev nodes")

    def write(self, handle: DeviceHandle, data: bytes) -> int:
        raise SyscallError(EAGAIN, "evdev is read-only")

    @property
    def pending(self) -> int:
        return len(self._queue)


class FramebufferDriver:
    """The Linux display driver (tegra_fb on the Nexus 7).

    The Cider prototype wraps this driver with an ``AppleM2CLCD`` I/O Kit
    class (§5.1); the wrapper lives in :mod:`repro.xnu.iokit_drivers`.
    """

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self.display = machine.display

    def blank(self, on: bool) -> None:
        self._machine.charge("iokit_method_dispatch")

    @property
    def width(self) -> int:
        return self.display.width_px

    @property
    def height(self) -> int:
        return self.display.height_px

    def read(self, handle: DeviceHandle, nbytes: int) -> bytes:
        return b""

    def write(self, handle: DeviceHandle, data: bytes) -> int:
        return len(data)
