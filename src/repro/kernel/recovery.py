"""Remount-time recovery: the fsck invariant checker and recovery log.

After a crash (or clean reboot) ``System.reboot`` rebuilds the kernel,
replays the storage journal into the fresh VFS, and then runs
:func:`run_fsck` — the invariant checker that proves the journal
discipline actually holds:

* the journal was fully consumed by the replay (no pending records);
* every checkpointed namespace entry resolves in the mounted tree with
  the right kind, identity (ino) and link count;
* every ino is referenced by exactly one path (this filesystem has no
  hardlinks, so refcount == nlink == 1);
* no orphan inodes: every durable data block belongs to a referenced
  file, and none lies past the journalled size;
* the volatile caches are empty (nothing dirty at mount time).

Both the :class:`FsckReport` and the :class:`RecoveryLog` are
byte-comparable documents with SHA-256 digests — the crash determinism
tests and the ``crash-determinism`` CI job diff them across runs.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from .errno import SyscallError
from .vfs import Directory, RegularFile


class _Document:
    """A deterministic line-oriented report."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def line(self, text: str) -> None:
        self.lines.append(text)

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    def digest(self) -> str:
        return hashlib.sha256(self.text().encode()).hexdigest()


class RecoveryLog(_Document):
    """The byte-comparable whole-reboot transcript (System.reboot)."""


class FsckReport(_Document):
    def __init__(self) -> None:
        super().__init__()
        self.ok = True
        self.errors: List[str] = []

    def error(self, message: str) -> None:
        self.ok = False
        self.errors.append(message)
        self.line(f"fsck: ERROR {message}")


def run_fsck(kernel, strict: bool = True) -> FsckReport:
    """Check the mounted tree against the journal device's durable state.

    ``strict`` additionally requires the volatile caches to be empty —
    true right after a remount, not once services have started writing
    again.  Charges ``fsck_per_entry`` per checkpointed entry.
    """
    machine = kernel.machine
    report = FsckReport()
    device = machine.storage.journal
    if device is None:
        report.line("fsck: no durable storage device; nothing to check")
        report.line("fsck: clean")
        return report

    entries = sorted(device.media_meta.items())
    machine.charge("fsck_per_entry", max(1, len(entries)))

    if device.media_journal:
        report.error(
            f"journal not consumed: {len(device.media_journal)} record(s)"
        )
    if strict and device.pending_records:
        report.error(
            f"{device.pending_records} uncommitted journal record(s) at mount"
        )
    if strict and device.dirty_pages:
        report.error(f"{device.dirty_pages} dirty page(s) at mount")

    files = dirs = 0
    refs = device.referenced_inos()
    for path, (kind, ino) in entries:
        try:
            node = kernel.vfs.resolve(path)
        except SyscallError:
            report.error(f"{path} missing from mounted tree")
            continue
        if kind == "dir":
            dirs += 1
            if not isinstance(node, Directory):
                report.error(f"{path} expected dir, found {node.kind}")
        else:
            files += 1
            if not isinstance(node, RegularFile):
                report.error(f"{path} expected file, found {node.kind}")
                continue
            if node.ino != ino:
                report.error(
                    f"{path} identity mismatch: ino {node.ino} != {ino}"
                )
            if node.nlink != 1:
                report.error(f"{path} nlink {node.nlink} != 1")

    for ino, paths in sorted(refs.items()):
        if len(paths) != 1:
            report.error(
                f"ino {ino} referenced by {len(paths)} paths: "
                + ", ".join(paths)
            )

    orphans = sorted(set(device.media_blocks) - set(refs))
    if orphans:
        report.error(f"orphan inode(s) with data blocks: {orphans}")
    from ..hw.storage import BLOCK_SIZE

    for ino in sorted(device.media_blocks):
        if ino in orphans:
            continue
        size = device.media_sizes.get(ino, 0)
        limit = -(-size // BLOCK_SIZE)
        stale = sorted(
            block for block in device.media_blocks[ino] if block >= limit
        )
        if stale:
            report.error(
                f"ino {ino} has block(s) {stale} past size {size}"
            )

    report.line(
        f"fsck: {files} file(s), {dirs} dir(s), "
        f"{len(refs)} tracked inode(s), journal pending=0"
    )
    report.line(
        "fsck: clean" if report.ok
        else f"fsck: {len(report.errors)} error(s)"
    )
    return report


def format_power_cut(stats: Optional[dict]) -> str:
    """One deterministic recovery-log line for power_cut statistics."""
    if stats is None:
        return "recovery: power loss with no durable storage device"
    return (
        f"recovery: power cut lost {stats['records_lost']} journal "
        f"record(s) and {stats['pages_lost']} dirty page(s); "
        f"{stats['records_survived']} record(s) and "
        f"{stats['pages_survived']} page(s) reached flash"
    )
