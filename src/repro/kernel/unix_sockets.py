"""AF_UNIX stream sockets.

Used by lmbench's lat_unix and — centrally for Cider — by the channel
between the *CiderPress* proxy app and the *eventpump* thread inside each
iOS app (paper §5.2): CiderPress forwards Android input events over a BSD
socket, and the eventpump republishes them as Mach IPC messages.

This module builds socket objects only; every descriptor they become —
``socket``, ``accept``, ``socketpair`` — is minted through
:func:`repro.kernel.files.fd_alloc`, the single checked allocation path
where ``RLIMIT_NOFILE`` surfaces EMFILE.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Deque, List, Optional

from collections import deque

from ..sim import WaitQueue
from .errno import (
    EAGAIN,
    ECONNREFUSED,
    EINVAL,
    ENOTSOCK,
    EOPNOTSUPP,
    EPIPE,
    SyscallError,
)
from .files import O_RDWR, OpenFile
from .vfs import SocketNode

if TYPE_CHECKING:
    from ..hw.machine import Machine

SOCK_CAPACITY = 65536


class _Stream:
    """One direction of a connected socket pair."""

    def __init__(self) -> None:
        self.buffer = bytearray()
        self.open = True
        self.waitq = WaitQueue("unix-stream")
        #: Causal carrier (repro.obs.causal) riding as metadata: set by
        #: the last traced write, consumed by the next read.
        self.carrier = None


class UnixConnection:
    """A full-duplex connection: two streams."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.a_to_b = _Stream()
        self.b_to_a = _Stream()


class UnixSocket(OpenFile):
    """One endpoint.  Created unconnected; becomes connected via
    connect/accept or socketpair."""

    def __init__(self, machine: "Machine") -> None:
        super().__init__(machine, O_RDWR)
        self.connection: Optional[UnixConnection] = None
        self._rx: Optional[_Stream] = None
        self._tx: Optional[_Stream] = None
        self.listener: Optional["UnixListener"] = None
        self.bound_path: Optional[str] = None

    # -- connection plumbing -----------------------------------------------

    def _attach(self, connection: UnixConnection, side_a: bool) -> None:
        self.connection = connection
        if side_a:
            self._rx, self._tx = connection.b_to_a, connection.a_to_b
        else:
            self._rx, self._tx = connection.a_to_b, connection.b_to_a
        # select() parks on the OpenFile wait queues: alias them to the
        # per-stream queues so writes on the peer wake selectors here.
        self.read_waitq = self._rx.waitq
        self.write_waitq = self._tx.waitq

    @property
    def connected(self) -> bool:
        return self.connection is not None

    # -- readiness ---------------------------------------------------------

    def poll_readable(self) -> bool:
        if self.listener is not None:
            return bool(self.listener.pending)
        if self._rx is None:
            return False
        return bool(self._rx.buffer) or not self._rx.open

    def poll_writable(self) -> bool:
        if self._tx is None:
            return False
        return len(self._tx.buffer) < SOCK_CAPACITY or not self._tx.open

    # -- I/O ------------------------------------------------------------------

    def read(self, nbytes: int) -> bytes:
        if self._rx is None:
            raise SyscallError(EINVAL, "socket not connected")
        sched = self.machine.scheduler
        while not self._rx.buffer:
            if not self._rx.open:
                return b""
            if self.flags & 0o4000:
                raise SyscallError(EAGAIN, "socket empty")
            self.machine.kernel.wait_interruptible(self._rx.waitq)
        self.machine.charge("sock_transfer")
        data = bytes(self._rx.buffer[:nbytes])
        del self._rx.buffer[: len(data)]
        hb = self.machine.hb
        if hb is not None:
            # Data edge: the writer's history arrived with the bytes.
            hb.acquire(self._rx)
        carrier, self._rx.carrier = self._rx.carrier, None
        if carrier is not None:
            obs = self.machine.obs
            if obs is not None and obs.causal is not None:
                obs.causal.adopt(carrier)
        self._rx.waitq.wake_all()  # writers blocked on backpressure
        return data

    def write(self, data: bytes) -> int:
        if self._tx is None:
            raise SyscallError(EINVAL, "socket not connected")
        if not self._tx.open:
            raise SyscallError(EPIPE, "peer closed")
        sched = self.machine.scheduler
        while len(self._tx.buffer) >= SOCK_CAPACITY:
            if self.flags & 0o4000:  # O_NONBLOCK: same contract as repro.net
                raise SyscallError(EAGAIN, "send buffer full")
            self.machine.kernel.wait_interruptible(self._tx.waitq)
            if not self._tx.open:
                raise SyscallError(EPIPE, "peer closed")
        self.machine.charge("sock_transfer")
        obs = self.machine.obs
        if obs is not None and obs.causal is not None:
            carrier = obs.causal.carrier()
            if carrier is not None:
                self._tx.carrier = carrier
        hb = self.machine.hb
        if hb is not None:
            hb.release(self._tx)
        self._tx.buffer.extend(data)
        self._tx.waitq.wake_all()  # readers blocked on empty
        return len(data)

    def on_last_close(self) -> None:
        if self._tx is not None:
            self._tx.open = False
            self._tx.waitq.wake_all()
        if self._rx is not None:
            self._rx.open = False
            self._rx.waitq.wake_all()
        if self.listener is not None:
            self.listener.closed = True
            self.listener.accept_waitq.wake_all()


class UnixListener:
    """State behind a listening socket."""

    def __init__(self, backlog: int) -> None:
        self.backlog = backlog
        self.pending: Deque[UnixSocket] = deque()
        self.accept_waitq = WaitQueue("unix-accept")
        self.closed = False


def socketpair(machine: "Machine"):
    """Create a connected pair (the simplest way CiderPress and the
    eventpump get a channel)."""
    connection = UnixConnection(machine)
    left = UnixSocket(machine)
    right = UnixSocket(machine)
    left._attach(connection, side_a=True)
    right._attach(connection, side_a=False)
    return left, right


def bind(machine: "Machine", sock: UnixSocket, path: str, backlog: int = 8):
    """bind + listen combined (the simulation has no separate listen)."""
    listener = UnixListener(backlog)
    sock.listener = listener
    sock.bound_path = path
    sock.read_waitq = listener.accept_waitq
    machine.kernel.vfs.bind_socket(path, listener)  # type: ignore[attr-defined]
    return listener


def connect(machine: "Machine", sock: UnixSocket, path: str) -> None:
    """Connect to a bound path; blocks until accepted."""
    node = machine.kernel.vfs.resolve(path)  # type: ignore[attr-defined]
    if not isinstance(node, SocketNode):
        raise SyscallError(ENOTSOCK, path)
    listener = node.listener
    if not isinstance(listener, UnixListener) or listener.closed:
        raise SyscallError(ECONNREFUSED, path)
    if len(listener.pending) >= listener.backlog:
        raise SyscallError(EAGAIN, "backlog full")
    connection = UnixConnection(machine)
    sock._attach(connection, side_a=True)
    peer = UnixSocket(machine)
    peer._attach(connection, side_a=False)
    listener.pending.append(peer)
    listener.accept_waitq.wake_all()


def accept(machine: "Machine", sock: UnixSocket) -> UnixSocket:
    """Accept one pending connection, blocking if none.

    Under ``O_NONBLOCK`` an empty backlog raises EAGAIN instead of
    blocking — the same non-blocking contract as the INET stack
    (historically this path blocked regardless of the flag)."""
    listener = sock.listener
    if listener is None:
        raise SyscallError(EOPNOTSUPP, "not listening")
    sched = machine.scheduler
    while not listener.pending:
        if listener.closed:
            raise SyscallError(EINVAL, "listener closed")
        if sock.flags & 0o4000:  # O_NONBLOCK
            raise SyscallError(EAGAIN, "no pending connections")
        machine.kernel.wait_interruptible(listener.accept_waitq)
    machine.charge("sock_transfer")
    return listener.pending.popleft()
