"""Signal numbering and per-process signal state.

The kernel's internal representation uses **Linux** signal numbers.  The
Cider compatibility layer (:mod:`repro.compat.signals`) translates to and
from XNU numbering at the ABI boundary, based on the persona of the thread
the signal is delivered to (paper §4.1).  The two systems agree on the
classic numbers but diverge for several signals — most famously SIGUSR1/2
(10/12 on Linux ARM, 30/31 on XNU) and the STOP/CONT group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

# -- Linux (ARM EABI) numbering ----------------------------------------------
SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGBUS = 7
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19
SIGURG = 23
SIGSYS = 31

NSIG = 32

SIG_DFL = "SIG_DFL"
SIG_IGN = "SIG_IGN"

#: Signals whose default disposition terminates the process.
_FATAL_BY_DEFAULT = frozenset(
    {
        SIGHUP,
        SIGINT,
        SIGQUIT,
        SIGILL,
        SIGTRAP,
        SIGABRT,
        SIGBUS,
        SIGFPE,
        SIGKILL,
        SIGUSR1,
        SIGSEGV,
        SIGUSR2,
        SIGPIPE,
        SIGALRM,
        SIGTERM,
        SIGSYS,
    }
)

#: Signals ignored by default.
_IGNORED_BY_DEFAULT = frozenset({SIGCHLD, SIGCONT, SIGURG})


def default_is_fatal(signum: int) -> bool:
    return signum in _FATAL_BY_DEFAULT


def default_is_ignored(signum: int) -> bool:
    return signum in _IGNORED_BY_DEFAULT


@dataclass
class SigInfo:
    """Kernel-internal siginfo (always Linux-numbered)."""

    signum: int
    sender_pid: int = 0
    code: int = 0
    #: Causal-trace carrier (repro.obs.causal) from the sending thread,
    #: adopted at delivery.  Metadata only — no ABI surface, no cost.
    causal: object = None


@dataclass
class SigAction:
    """A registered handler.  ``handler`` is SIG_DFL, SIG_IGN or a callable
    invoked as ``handler(ctx, signum_in_persona_numbering, siginfo)``."""

    handler: object = SIG_DFL
    #: Persona name the handler was registered from; delivery translates
    #: the signal number into this persona's numbering.
    persona: str = "android"


class SignalState:
    """Per-process dispositions plus per-thread pending queues."""

    def __init__(self) -> None:
        self.actions: Dict[int, SigAction] = {}

    def set_action(self, signum: int, action: SigAction) -> SigAction:
        if not 1 <= signum < NSIG:
            raise ValueError(f"bad signal {signum}")
        previous = self.actions.get(signum, SigAction())
        self.actions[signum] = action
        return previous

    def action_for(self, signum: int) -> SigAction:
        return self.actions.get(signum, SigAction())

    def fork_copy(self) -> "SignalState":
        copy = SignalState()
        copy.actions = dict(self.actions)
        return copy

    def exec_reset(self) -> None:
        """exec() resets caught signals to default, keeps ignored ones."""
        self.actions = {
            signum: action
            for signum, action in self.actions.items()
            if action.handler == SIG_IGN
        }


@dataclass
class PendingSignals:
    """A thread's queue of undelivered signals."""

    queue: List[SigInfo] = field(default_factory=list)

    def push(self, info: SigInfo) -> None:
        self.queue.append(info)

    def pop(self) -> Optional[SigInfo]:
        if self.queue:
            return self.queue.pop(0)
        return None

    def __bool__(self) -> bool:
        return bool(self.queue)
