"""Errno values and the kernel-internal error convention.

Handlers raise :class:`SyscallError`; each kernel ABI converts that into
its user-visible convention — Linux returns ``-errno``, XNU sets the carry
flag and returns the positive errno (paper §4.1: "many XNU syscalls return
an error indication through CPU flags where Linux would return a negative
integer").

The values below are shared by Linux and XNU for every code the simulation
uses (both descend from the same historical Unix numbering).
"""

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
ENXIO = 6
E2BIG = 7
ENOEXEC = 8
EBADF = 9
ECHILD = 10
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EBUSY = 16
EEXIST = 17
ENODEV = 19
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENFILE = 23
EMFILE = 24
ENOTTY = 25
EFBIG = 27
ENOSPC = 28
ESPIPE = 29
EROFS = 30
EPIPE = 32
ERANGE = 34
ENOSYS = 38
ENOTEMPTY = 39
ENOTSOCK = 88
EMSGSIZE = 90
EOPNOTSUPP = 95
EADDRINUSE = 98
EADDRNOTAVAIL = 99
ENETUNREACH = 101
ECONNRESET = 104
ENOBUFS = 105
EISCONN = 106
ENOTCONN = 107
ETIMEDOUT = 110
ECONNREFUSED = 111
EHOSTUNREACH = 113
EINPROGRESS = 115

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("E") and isinstance(value, int)
}


def errno_name(errno: int) -> str:
    return _NAMES.get(errno, f"E?{errno}")


class SyscallError(Exception):
    """Raised by syscall handlers; converted by the ABI boundary."""

    def __init__(self, errno: int, message: str = "") -> None:
        super().__init__(f"{errno_name(errno)}: {message}" if message else errno_name(errno))
        self.errno = errno
