"""Processes, kernel threads, and user execution contexts.

The simulated analogue of ``task_struct``:

* :class:`Process` — pid, address space, descriptor table, signal state,
  loaded binaries/libraries and their per-process state.
* :class:`KThread` — a kernel thread; carries the Cider *persona* (kernel
  ABI + TLS area pointers, one TLS area per persona it has executed in).
* :class:`UserContext` — what simulated "machine code" receives: its only
  window onto the system.  User code charges CPU work through it and
  reaches the kernel exclusively via its persona's syscall ABI.

Fork note: Python cannot clone a live stack, so ``fork`` takes the child's
continuation as a callable (the libc wrappers expose this as
``fork(child_body)``).  Everything else — address-space duplication cost,
descriptor sharing, persona inheritance, atfork/atexit behaviour — follows
the real semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..sim import WaitQueue
from ..sim.resources import RLIMIT_NPROC, Rlimits
from ..persona import Persona, TLSArea
from .errno import EAGAIN, ECHILD, ENOEXEC, ESRCH, SyscallError
from .files import FDTable
from .mm import AddressSpace
from .signals import SIGABRT, SIGSEGV, SigInfo, SignalState, PendingSignals

if TYPE_CHECKING:
    from ..binfmt import BinaryImage
    from ..hw.machine import Machine
    from .kernel import Kernel
    from .vfs import Directory, RegularFile


class ProcessExited(BaseException):
    """Control-flow unwind for exit/exec; carries the exit code."""

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code


class ThreadExited(BaseException):
    """Control-flow unwind for a single thread's exit (pthread_exit)."""

    def __init__(self, value: object = None) -> None:
        super().__init__("thread exit")
        self.value = value


def _fork_copy_value(value: object) -> object:
    if hasattr(value, "fork_copy"):
        return value.fork_copy()  # type: ignore[union-attr]
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, set):
        return set(value)
    return value


class Process:
    """One simulated process."""

    def __init__(
        self, kernel: "Kernel", pid: int, ppid: int, name: str
    ) -> None:
        self.kernel = kernel
        self.pid = pid
        self.ppid = ppid
        self.name = name
        self.address_space = AddressSpace(kernel.machine)
        self.fd_table = FDTable()
        self.cwd: Optional["Directory"] = None
        self.signals = SignalState()
        self.threads: List[KThread] = []
        self.children: List[Process] = []
        self.state = "running"  # running | zombie | dead
        self.exit_code: Optional[int] = None
        self.child_exit_waitq = WaitQueue(f"wait:{pid}")
        self.binary: Optional["BinaryImage"] = None
        self.argv: List[str] = []
        self.loaded_libraries: Dict[str, "BinaryImage"] = {}
        self.lib_state: Dict[str, Dict[str, object]] = {}
        self.libc_factory: Optional[Callable[["UserContext"], object]] = None
        self.dying: Optional[int] = None  # fatal signal in flight
        self.mach_task: Optional[object] = None  # set by duct-taped Mach IPC
        #: POSIX resource limits (RLIMIT_AS / RLIMIT_NOFILE / RLIMIT_NPROC),
        #: inherited across fork/spawn via the getrlimit/setrlimit traps.
        self.rlimits = Rlimits()
        #: XNU jetsam priority band (higher = more important; processes in
        #: the SYSTEM band are never killed).  See repro.kernel.pressure.
        self.jetsam_priority = 3  # JETSAM_PRIORITY_DEFAULT
        #: Android lowmemorykiller badness (higher = killed first;
        #: negative = system, never killed).
        self.oom_adj = 0

    # -- state helpers ----------------------------------------------------------

    def lib_state_for(self, lib_name: str) -> Dict[str, object]:
        return self.lib_state.setdefault(lib_name, {})

    def main_thread(self) -> "KThread":
        return self.threads[0]

    def fork_lib_state(self) -> Dict[str, Dict[str, object]]:
        return {
            lib: {key: _fork_copy_value(val) for key, val in state.items()}
            for lib, state in self.lib_state.items()
        }

    @property
    def alive(self) -> bool:
        return self.state == "running"

    def __repr__(self) -> str:
        return f"<Process pid={self.pid} {self.name!r} {self.state}>"


class KThread:
    """A kernel thread: schedulable entity plus persona state.

    ``__slots__``: one KThread is touched on every trap of every
    simulated syscall (persona load, pending-signal check), and thread
    storms create thousands — keep the layout compact.
    """

    __slots__ = (
        "process",
        "tid",
        "persona",
        "tls_areas",
        "pending",
        "sim_thread",
        "exited",
    )

    def __init__(
        self, process: Process, tid: int, persona: Persona
    ) -> None:
        self.process = process
        self.tid = tid
        self.persona = persona
        self.tls_areas: Dict[str, TLSArea] = {}
        self.pending = PendingSignals()
        self.sim_thread = None  # attached by ProcessManager at spawn
        self.exited = False

    # -- TLS ------------------------------------------------------------------

    def tls(self, persona: Optional[Persona] = None) -> TLSArea:
        """The TLS area for ``persona`` (default: the current one),
        created on first use."""
        target = persona or self.persona
        area = self.tls_areas.get(target.name)
        if area is None:
            area = TLSArea(target.tls_layout)
            area.set("thread_id", self.tid)
            self.tls_areas[target.name] = area
        return area

    @property
    def errno(self) -> int:
        return self.tls().errno

    @errno.setter
    def errno(self, value: int) -> None:
        self.tls().errno = value

    # -- kernel entry ------------------------------------------------------------

    def trap(self, trapno: int, *args: object) -> object:
        """Trap into the kernel under the current persona's ABI."""
        return self.process.kernel.trap(self, trapno, args)

    def __repr__(self) -> str:
        return (
            f"<KThread {self.process.pid}:{self.tid} "
            f"persona={self.persona.name}>"
        )


class UserContext:
    """The execution context handed to simulated user code."""

    __slots__ = ("kernel", "thread", "process", "machine", "_libc")

    def __init__(self, kernel: "Kernel", thread: KThread) -> None:
        self.kernel = kernel
        self.thread = thread
        self.process = thread.process
        self.machine: "Machine" = kernel.machine
        self._libc: Optional[object] = None

    @property
    def libc(self) -> object:
        """The C library facade for this process's binary format."""
        if self._libc is None:
            factory = self.process.libc_factory
            if factory is None:
                raise RuntimeError(
                    f"{self.process!r} has no libc (no binary loaded?)"
                )
            self._libc = factory(self)
        return self._libc

    # -- charging CPU work -------------------------------------------------------

    def work(self, ops: float) -> None:
        """Charge ``ops`` generic native operations."""
        self.machine.charge("native_op", ops)

    def op(self, cost_name: str, times: float = 1) -> None:
        """Charge a specific operation, honouring the binary's compiler
        profile (Xcode's integer divide is slower than GCC's)."""
        factor = 1.0
        if self.process.binary is not None:
            factor = self.process.binary.compiler.factor(cost_name)
        self.machine.clock.charge(
            self.machine.costs[cost_name] * times * factor
        )

    # -- library access ------------------------------------------------------------

    def lib_state(self, lib_name: str) -> Dict[str, object]:
        return self.process.lib_state_for(lib_name)

    def dlopen(self, lib_name: str) -> "BinaryImage":
        """Find an already-loaded library image by name."""
        try:
            return self.process.loaded_libraries[lib_name]
        except KeyError:
            raise SyscallError(ENOEXEC, f"dlopen: {lib_name}") from None

    def dlsym(self, lib_name: str, symbol: str) -> Callable:
        """Resolve a function symbol; returns a callable bound to this
        context."""
        image = self.dlopen(lib_name)
        sym = image.lookup(symbol)
        if sym.fn is None:
            raise SyscallError(ENOEXEC, f"{symbol} is not a function")
        fn = sym.fn
        return lambda *args: fn(self, *args)

    def __repr__(self) -> str:
        return f"<UserContext {self.process.name}:{self.thread.tid}>"


class ProcessManager:
    """Process table and lifecycle (fork/exec/exit/wait/spawn)."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.table: Dict[int, Process] = {}
        self._next_pid = 1
        self._next_tid = 1

    # -- allocation ---------------------------------------------------------------

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def create_process(
        self, name: str, ppid: int = 0, persona: Optional[Persona] = None
    ) -> Process:
        process = Process(self.kernel, self._alloc_pid(), ppid, name)
        process.cwd = self.kernel.vfs.root
        self.table[process.pid] = process
        parent = self.table.get(ppid)
        if parent is not None:
            parent.children.append(process)
        thread = KThread(
            process,
            self._alloc_tid(),
            persona or self.kernel.personas.default,
        )
        process.threads.append(thread)
        return process

    def get(self, pid: int) -> Process:
        process = self.table.get(pid)
        if process is None or process.state == "dead":
            raise SyscallError(ESRCH, f"pid {pid}")
        return process

    # -- thread plumbing -----------------------------------------------------------

    def attach_sim_thread(
        self, thread: KThread, body: Callable[[], object], daemon: bool = False
    ) -> None:
        process = thread.process

        def runner() -> object:
            kernel = self.kernel
            try:
                return body()
            except ProcessExited as exited:
                return exited.code
            except ThreadExited as texit:
                return texit.value
            except SyscallError as error:
                # A simulated errno escaped every userspace handler: the
                # program aborted.  Tombstone it; with containment on, the
                # rest of the machine keeps running (the parent still gets
                # SIGCHLD and a wait status), otherwise fail fast so the
                # test harness sees the error.
                kernel.report_crash(
                    process,
                    SIGABRT,
                    f"uncaught syscall error: {error}",
                )
                self.finalize_process(process, 128 + SIGABRT)
                if kernel.contain_crashes:
                    return 128 + SIGABRT
                raise
            except Exception:
                # The simulated program crashed (a bug in user code).
                # Finalize the process so waiting parents are not stranded;
                # containment converts the crash into a tombstone + exit
                # code 139, fail-fast surfaces it to whoever joins.
                import traceback as _traceback

                kernel.report_crash(
                    process,
                    SIGSEGV,
                    "unhandled exception in simulated user code",
                    traceback=_traceback.format_exc(),
                )
                self.finalize_process(process, 139)
                if kernel.contain_crashes:
                    return 139
                raise

        sim = self.kernel.machine.scheduler.spawn(
            runner, name=f"{process.name}:{thread.tid}", daemon=daemon
        )
        sim.kthread = thread  # type: ignore[attr-defined]
        thread.sim_thread = sim

    def current_kthread(self) -> KThread:
        sim = self.kernel.machine.scheduler.current_thread()
        kthread = getattr(sim, "kthread", None)
        if kthread is None:
            raise RuntimeError("current sim thread has no kernel thread")
        return kthread

    def spawn_kthread(
        self,
        process: Process,
        body: Callable[[UserContext], object],
        name: str = "thread",
        persona: Optional[Persona] = None,
        daemon: Optional[bool] = None,
    ) -> KThread:
        """clone()-level thread creation within an existing process."""
        self.kernel.machine.charge("thread_create")
        if daemon is None:
            # Threads inherit their process's daemon-ness: a service
            # app's worker threads must not pin the simulation alive.
            sims = [t.sim_thread for t in process.threads if t.sim_thread]
            daemon = bool(sims and sims[0].daemon)
        thread = KThread(
            process, self._alloc_tid(), persona or process.main_thread().persona
        )
        process.threads.append(thread)
        ctx = UserContext(self.kernel, thread)

        def thread_body() -> object:
            try:
                return body(ctx)
            finally:
                thread.exited = True
                if thread in process.threads:
                    process.threads.remove(thread)

        self.attach_sim_thread(thread, thread_body, daemon=daemon)
        return thread

    # -- program startup --------------------------------------------------------------

    def start_process(
        self,
        path: str,
        argv: Optional[List[str]] = None,
        name: Optional[str] = None,
        ppid: int = 0,
        daemon: bool = False,
    ) -> Process:
        """Kernel/system-level process launch: create a process whose main
        thread execs ``path``."""
        argv = list(argv or [path])
        process = self.create_process(name or path.rsplit("/", 1)[-1], ppid)
        thread = process.main_thread()

        def body() -> object:
            code = self._exec_and_run(thread, path, argv)
            raise ProcessExited(code)

        self.attach_sim_thread(thread, body, daemon=daemon)
        return process

    def _exec_and_run(
        self, thread: KThread, path: str, argv: List[str]
    ) -> int:
        """Load ``path`` into ``thread``'s process and run it to completion.
        Returns the exit code (does not finalize)."""
        process = thread.process
        file = self._resolve_executable(path, process)
        self.kernel.machine.charge("exec_base")
        process.address_space.unmap_all()
        process.signals.exec_reset()
        process.lib_state.clear()
        process.loaded_libraries.clear()
        process.name = path.rsplit("/", 1)[-1]
        process.argv = argv
        start = self.kernel.exec_image(process, thread, file, argv)
        ctx = UserContext(self.kernel, thread)
        result = start(ctx)
        code = result if isinstance(result, int) else 0
        self.finalize_process(process, code)
        return code

    def _resolve_executable(self, path: str, process: Process) -> "RegularFile":
        from .vfs import RegularFile  # local import to avoid cycle

        node = self.kernel.vfs.resolve(path, process.cwd)
        if not isinstance(node, RegularFile) or node.binary_image is None:
            raise SyscallError(ENOEXEC, path)
        return node

    # -- fork / exec / spawn --------------------------------------------------------

    def do_fork(
        self, thread: KThread, child_body: Callable[[UserContext], object]
    ) -> int:
        """fork(2).  The child runs ``child_body`` (Python cannot clone a
        stack); kernel-side costs are fully modelled."""
        kernel = self.kernel
        machine = kernel.machine
        parent = thread.process

        self._check_nproc(parent)
        cow = kernel.cow_fork
        machine.charge("fork_base")
        pages = parent.address_space.copied_on_fork_pages
        if pages:
            # COW fork only marks the PTEs read-only instead of copying
            # them — the per-page cost drops; the copy is paid lazily by
            # mm.touch on first write.
            machine.charge(
                "cow_fork_per_page" if cow else "fork_per_page", pages
            )
        if kernel.mach_subsystem is not None:
            machine.charge("mach_fork_init")
        machine.emit(
            "process", "fork", parent=parent.pid, pages=pages, cow=cow
        )

        child = Process(kernel, self._alloc_pid(), parent.pid, parent.name)
        child.address_space = parent.address_space.fork_copy(cow=cow)
        child.fd_table = parent.fd_table.fork_copy()
        child.cwd = parent.cwd
        child.signals = parent.signals.fork_copy()
        child.binary = parent.binary
        child.argv = list(parent.argv)
        child.loaded_libraries = dict(parent.loaded_libraries)
        child.lib_state = parent.fork_lib_state()
        child.libc_factory = parent.libc_factory
        child.rlimits = parent.rlimits.fork_copy()
        child.jetsam_priority = parent.jetsam_priority
        child.oom_adj = parent.oom_adj
        self.table[child.pid] = child
        parent.children.append(child)

        child_thread = KThread(child, self._alloc_tid(), thread.persona)
        child_thread.tls_areas = {
            name: area.fork_copy() for name, area in thread.tls_areas.items()
        }
        child_thread.tls().set("thread_id", child_thread.tid)
        child.threads.append(child_thread)
        ctx = UserContext(kernel, child_thread)

        def body() -> object:
            result = child_body(ctx)
            code = result if isinstance(result, int) else 0
            # Returning from the forked continuation flows through the C
            # library's exit path, so registered atexit handlers run —
            # on iOS that is one dyld-registered callback per loaded
            # image (paper §6.2: "execution of 115 handlers on exit").
            exit_fn = getattr(ctx.libc, "exit", None)
            if exit_fn is not None and child.libc_factory is not None:
                exit_fn(code)  # raises ProcessExited via the exit trap
            self.finalize_process(child, code)
            return code

        # Daemon-ness is inherited, exactly as in do_posix_spawn: a
        # service supervisor forking its workload must not keep the
        # simulation from quiescing once everything else is done.
        parent_sim = thread.sim_thread
        daemon = bool(parent_sim is not None and parent_sim.daemon)
        self.attach_sim_thread(child_thread, body, daemon=daemon)
        self._inherit_causal(parent_sim, child_thread.sim_thread)
        return child.pid

    def _inherit_causal(self, parent_sim, child_sim) -> None:
        """fork/posix_spawn: the child joins the parent's causal trace."""
        obs = self.kernel.machine.obs
        if obs is not None and obs.causal is not None and parent_sim is not None:
            obs.causal.inherit(parent_sim, child_sim)

    def do_exec(self, thread: KThread, path: str, argv: List[str]) -> "NoReturn":  # type: ignore[name-defined]
        """execve(2): replace the image; never returns to the caller."""
        code = self._exec_and_run(thread, path, argv)
        raise ProcessExited(code)

    def do_posix_spawn(
        self, thread: KThread, path: str, argv: Optional[List[str]] = None
    ) -> int:
        """posix_spawn: built from clone+exec (paper §4.1) — a fresh child
        that immediately execs, without copying the parent's image."""
        kernel = self.kernel
        parent = thread.process
        self._check_nproc(parent)
        kernel.machine.charge("fork_base")  # the clone part (no page copy)
        child = self.create_process(
            path.rsplit("/", 1)[-1], ppid=parent.pid, persona=thread.persona
        )
        child.fd_table = parent.fd_table.fork_copy()
        child.cwd = parent.cwd
        child.rlimits = parent.rlimits.fork_copy()
        child.jetsam_priority = parent.jetsam_priority
        child.oom_adj = parent.oom_adj
        child_thread = child.main_thread()
        argv_list = list(argv or [path])

        def body() -> object:
            code = self._exec_and_run(child_thread, path, argv_list)
            raise ProcessExited(code)

        # Daemon-ness is inherited: services spawned by launchd must not
        # keep the simulation from quiescing.
        parent_sim = thread.sim_thread
        daemon = bool(parent_sim is not None and parent_sim.daemon)
        self.attach_sim_thread(child_thread, body, daemon=daemon)
        self._inherit_causal(parent_sim, child_thread.sim_thread)
        return child.pid

    def _check_nproc(self, parent: Process) -> None:
        """RLIMIT_NPROC: forks/spawns fail with EAGAIN once the live
        process count reaches the limit (no-cost when unlimited)."""
        limit = parent.rlimits.soft(RLIMIT_NPROC)
        if limit is not None and len(self.live_processes()) >= limit:
            raise SyscallError(
                EAGAIN, f"RLIMIT_NPROC: {limit} processes already live"
            )

    # -- exit / wait --------------------------------------------------------------

    def finalize_process(self, process: Process, code: int) -> None:
        """Turn the process into a zombie and notify the parent."""
        if process.state != "running":
            return
        self.kernel.machine.charge("exit_base")
        process.state = "zombie"
        process.exit_code = code
        process.fd_table.close_all()
        process.address_space.unmap_all()
        # Dead processes stop listening for memory-pressure warnings.
        self.kernel.memory_pressure_listeners.pop(process.pid, None)
        # Mach IPC teardown: the task's receive rights die, so peers
        # blocked on its ports observe dead names instead of hanging.
        mach = self.kernel.mach_subsystem
        if mach is not None:
            terminate = getattr(mach, "task_terminate", None)
            if terminate is not None and getattr(
                mach, "space_exists", lambda _t: False
            )(process):
                terminate(process)
        # Kill any remaining sibling threads of the process.
        current_sim = None
        scheduler = self.kernel.machine.scheduler
        if scheduler.in_sim_thread():
            current_sim = scheduler.current_thread()
        for other in list(process.threads):
            if other.sim_thread is not None and other.sim_thread is not current_sim:
                scheduler_kill = getattr(scheduler, "kill_thread", None)
                if scheduler_kill is not None:
                    scheduler_kill(other.sim_thread)
        parent = self.table.get(process.ppid)
        if parent is not None and parent.state == "running":
            parent.child_exit_waitq.wake_all()
            from .signals import SIGCHLD

            self.kernel.send_signal_to_process(parent, SIGCHLD, process.pid)
        self.kernel.machine.emit(
            "process", "exit", pid=process.pid, code=code
        )

    def do_exit(self, thread: KThread, code: int) -> "NoReturn":  # type: ignore[name-defined]
        self.finalize_process(thread.process, code)
        raise ProcessExited(code)

    def do_waitpid(self, thread: KThread, pid: int = -1) -> tuple:
        """waitpid(2): returns (pid, exit_code)."""
        process = thread.process
        self.kernel.machine.charge("wait_base")
        while True:
            candidates = [
                child
                for child in process.children
                if pid in (-1, child.pid)
            ]
            if not candidates:
                raise SyscallError(ECHILD, f"waitpid({pid})")
            for child in candidates:
                if child.state == "zombie":
                    child.state = "dead"
                    process.children.remove(child)
                    del self.table[child.pid]
                    return child.pid, child.exit_code
            self.kernel.wait_interruptible(process.child_exit_waitq)

    def live_processes(self) -> List[Process]:
        return [p for p in self.table.values() if p.state == "running"]
