"""Pipes: the substrate for lmbench's lat_pipe and the shell's plumbing.

:func:`make_pipe` only builds the two endpoint objects; descriptor
installation happens in the ``pipe`` syscall via
:func:`repro.kernel.files.fd_alloc`, the single checked allocation path,
so ``RLIMIT_NOFILE`` surfaces EMFILE here exactly as it does for opens
and sockets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errno import EAGAIN, EPIPE, SyscallError
from .files import O_RDONLY, O_WRONLY, OpenFile
from .signals import SIGPIPE

if TYPE_CHECKING:
    from ..hw.machine import Machine
    from .kernel import Kernel

PIPE_CAPACITY = 65536


class _PipeCore:
    """Shared state between the two ends."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.buffer = bytearray()
        self.reader_open = True
        self.writer_open = True


class PipeReader(OpenFile):
    def __init__(self, machine: "Machine", core: _PipeCore) -> None:
        super().__init__(machine, O_RDONLY)
        self.core = core

    def poll_readable(self) -> bool:
        return bool(self.core.buffer) or not self.core.writer_open

    def poll_writable(self) -> bool:
        return False

    def read(self, nbytes: int) -> bytes:
        sched = self.machine.scheduler
        while not self.core.buffer:
            if not self.core.writer_open:
                return b""  # EOF
            if self.flags & 0o4000:  # O_NONBLOCK
                raise SyscallError(EAGAIN, "pipe empty")
            self.machine.kernel.wait_interruptible(self.read_waitq)
        self.machine.charge("pipe_transfer")
        data = bytes(self.core.buffer[:nbytes])
        del self.core.buffer[: len(data)]
        hb = self.machine.hb
        if hb is not None:
            # Data edge: the writer's history arrived with the bytes.
            hb.acquire(self.core)
        self.write_waitq.wake_all()
        return data

    def on_last_close(self) -> None:
        self.core.reader_open = False
        self.write_waitq.wake_all()


class PipeWriter(OpenFile):
    def __init__(self, machine: "Machine", core: _PipeCore) -> None:
        super().__init__(machine, O_WRONLY)
        self.core = core
        # The reader's waitq lives on the reader object; share queues via
        # the core by rebinding both ends to the same queues.
        self.reader: PipeReader = None  # type: ignore[assignment]

    def poll_readable(self) -> bool:
        return False

    def poll_writable(self) -> bool:
        return len(self.core.buffer) < PIPE_CAPACITY or not self.core.reader_open

    def write(self, data: bytes) -> int:
        sched = self.machine.scheduler
        kernel: "Kernel" = self.machine.kernel  # type: ignore[attr-defined]
        if not self.core.reader_open:
            # POSIX: SIGPIPE to the writer, then EPIPE.
            thread = sched.current_thread()
            kthread = getattr(thread, "kthread", None)
            if kthread is not None:
                kernel.send_signal_to_process(kthread.process, SIGPIPE)
            raise SyscallError(EPIPE, "reader closed")
        while len(self.core.buffer) >= PIPE_CAPACITY:
            if self.flags & 0o4000:
                raise SyscallError(EAGAIN, "pipe full")
            self.machine.kernel.wait_interruptible(self.reader.write_waitq)
            if not self.core.reader_open:
                raise SyscallError(EPIPE, "reader closed")
        self.machine.charge("pipe_transfer")
        room = PIPE_CAPACITY - len(self.core.buffer)
        accepted = data[:room]
        self.core.buffer.extend(accepted)
        hb = self.machine.hb
        if hb is not None:
            hb.release(self.core)
        self.reader.read_waitq.wake_all()
        return len(accepted)

    def on_last_close(self) -> None:
        self.core.writer_open = False
        self.reader.read_waitq.wake_all()


def make_pipe(machine: "Machine"):
    """Create a connected (reader, writer) pair."""
    core = _PipeCore(machine)
    reader = PipeReader(machine, core)
    writer = PipeWriter(machine, core)
    writer.reader = reader
    # Both ends share one writability queue (the reader's): the reader
    # wakes ``self.write_waitq`` after draining, and blocked writers park
    # on ``reader.write_waitq`` — but select-for-writable parks on the
    # *writer's* queue.  Aliasing them makes that wakeup reach pollers
    # too instead of silently never firing.
    writer.write_waitq = reader.write_waitq
    return reader, writer
