"""The Linux (ARM EABI) syscall table — the domestic kernel ABI.

Syscall numbers follow the ARM EABI assignments for the calls the
simulation implements; Cider-specific additions (``set_persona``) use a
number above the native range.  Handlers raise
:class:`~repro.kernel.errno.SyscallError`; the Linux ABI converts failures
to the ``-errno`` return convention that bionic's wrappers decode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..net.sockets import AF_INET, AF_UNIX, SOCK_STREAM, INetSocket
from ..persona.abi import DispatchTable, KernelABI
from ..sim.resources import RLIMIT_AS, RLIMIT_NOFILE
from .errno import EINVAL, ENOTSOCK, ENOTTY, EOPNOTSUPP, ESRCH, SyscallError
from .files import (
    DeviceHandle,
    DirectoryHandle,
    FDTable,
    O_CREAT,
    O_EXCL,
    OpenFile,
    fd_alloc,
)
from .pipes import make_pipe
from .select import do_select
from .signals import SigAction
from .unix_sockets import UnixSocket, accept, bind, connect, socketpair

if TYPE_CHECKING:
    from .kernel import Kernel
    from .process import KThread

# -- ARM EABI syscall numbers ---------------------------------------------------
NR_exit = 1
NR_fork = 2
NR_read = 3
NR_write = 4
NR_open = 5
NR_close = 6
NR_waitpid = 7  # legacy number kept for the simulation's waitpid
NR_unlink = 10
NR_execve = 11
NR_lseek = 19
NR_getpid = 20
NR_sync = 36
NR_kill = 37
NR_rename = 38
NR_mkdir = 39
NR_rmdir = 40
NR_dup = 41
NR_pipe = 42
NR_ioctl = 54
NR_dup2 = 63
NR_setrlimit = 75
NR_getrlimit = 76
NR_fsync = 118
NR_fdatasync = 148
NR_getppid = 64
NR_sigaction = 67
NR_getdents = 141
NR_select = 142  # _newselect
NR_sched_yield = 158
NR_nanosleep = 162
NR_stat = 195  # stat64
NR_gettid = 224
NR_socket = 281
NR_bind = 282
NR_connect = 283
NR_listen = 284
NR_accept = 285
NR_getsockname = 286
NR_socketpair = 288
NR_sendto = 290
NR_recvfrom = 292
NR_shutdown = 293
NR_setsockopt = 294
NR_getsockopt = 295
NR_clone = 120
#: Cider addition — available from every persona (paper §4.3).
NR_set_persona = 983045  # above the native ARM range (__ARM_NR_* area)

#: ioctl request: read one input event object from an evdev node.
EVIOC_READ_EVENT = 0x4501
#: ioctl request: framebuffer geometry.
FBIOGET_VSCREENINFO = 0x4600


class LinuxABI(KernelABI):
    """The domestic kernel ABI: one dispatch table, -errno convention."""

    name = "linux"

    def __init__(self) -> None:
        self.table = DispatchTable("linux")
        _register_all(self.table)

    def tables(self):
        return (self.table,)

    def dispatch(
        self, kernel: "Kernel", thread: "KThread", trapno: int, args: tuple
    ) -> object:
        _name, handler = self.table.lookup(trapno)
        return handler(kernel, thread, *args)

    def classify_trap(self, trapno: int) -> str:
        return "swi"  # Linux/ARM has a single software-interrupt entry

    def success(self, value: object) -> object:
        return value

    def failure(self, errno: int) -> object:
        return -errno

    def number_of(self, name: str) -> int:
        return self.table.number_of(name)


# -- handlers -------------------------------------------------------------------


def sys_exit(kernel: "Kernel", thread: "KThread", code: int = 0):
    kernel.processes.do_exit(thread, code)


def sys_fork(kernel: "Kernel", thread: "KThread", child_body: Callable):
    return kernel.processes.do_fork(thread, child_body)


def sys_execve(
    kernel: "Kernel", thread: "KThread", path: str, argv: Optional[List[str]] = None
):
    kernel.processes.do_exec(thread, path, list(argv or [path]))


def sys_waitpid(kernel: "Kernel", thread: "KThread", pid: int = -1):
    return kernel.processes.do_waitpid(thread, pid)


def sys_getpid(kernel: "Kernel", thread: "KThread"):
    return thread.process.pid


def sys_getppid(kernel: "Kernel", thread: "KThread"):
    return thread.process.ppid


def sys_gettid(kernel: "Kernel", thread: "KThread"):
    return thread.tid


def sys_read(kernel: "Kernel", thread: "KThread", fd: int, nbytes: int):
    return thread.process.fd_table.get(fd).read(nbytes)


def sys_write(kernel: "Kernel", thread: "KThread", fd: int, data: bytes):
    return thread.process.fd_table.get(fd).write(data)


def sys_open(kernel: "Kernel", thread: "KThread", path: str, flags: int = 0):
    return kernel.open_path(thread.process, path, flags)


def sys_close(kernel: "Kernel", thread: "KThread", fd: int):
    kernel.machine.charge("close_base")
    thread.process.fd_table.close(fd)
    return 0


def sys_lseek(
    kernel: "Kernel", thread: "KThread", fd: int, offset: int, whence: int
):
    return thread.process.fd_table.get(fd).lseek(offset, whence)


def sys_dup(kernel: "Kernel", thread: "KThread", fd: int):
    return thread.process.fd_table.dup(fd)


def sys_dup2(kernel: "Kernel", thread: "KThread", fd: int, newfd: int):
    return thread.process.fd_table.dup2(fd, newfd)


def sys_pipe(kernel: "Kernel", thread: "KThread"):
    reader, writer = make_pipe(kernel.machine)
    process = thread.process
    rfd = fd_alloc(process, reader)
    try:
        wfd = fd_alloc(process, writer)
    except SyscallError:
        # Leave no half-created pipe behind when the table fills between
        # the two descriptors (EMFILE rollback).
        process.fd_table.close(rfd)
        raise
    return rfd, wfd


def sys_ioctl(
    kernel: "Kernel", thread: "KThread", fd: int, request: int, arg: object = None
):
    handle = thread.process.fd_table.get(fd)
    if not isinstance(handle, DeviceHandle):
        raise SyscallError(ENOTTY, "ioctl on non-device")
    if request == EVIOC_READ_EVENT:
        return handle.driver.read_event(handle)
    if request == FBIOGET_VSCREENINFO:
        return {"xres": handle.driver.width, "yres": handle.driver.height}
    return handle.ioctl(request, arg)


def sys_mkdir(kernel: "Kernel", thread: "KThread", path: str):
    kernel.vfs.mkdir(path, thread.process.cwd)
    return 0


def sys_rmdir(kernel: "Kernel", thread: "KThread", path: str):
    kernel.vfs.rmdir(path, thread.process.cwd)
    return 0


def sys_unlink(kernel: "Kernel", thread: "KThread", path: str):
    kernel.vfs.unlink(path, thread.process.cwd)
    return 0


def sys_rename(kernel: "Kernel", thread: "KThread", old_path: str,
               new_path: str):
    kernel.vfs.rename(old_path, new_path, thread.process.cwd)
    return 0


def _charge_flush(machine, pages: int, records: int) -> None:
    if pages:
        machine.charge("storage_flush_per_page", pages)
    if records:
        machine.charge("journal_commit_record", records)


def sys_fsync(kernel: "Kernel", thread: "KThread", fd: int):
    """Shared by both personas (Linux NR 118 / XNU BSD trap 95).

    Flushes the file's dirty pages and commits the metadata journal tail.
    Without a journal device (or on an untracked boot-image file) it is a
    barrier that costs ``fsync_base`` and succeeds — matching fsync on a
    filesystem with nothing dirty.
    """
    handle = thread.process.fd_table.get(fd)
    machine = kernel.machine
    machine.charge("fsync_base")
    journal = machine.storage.journal
    inode = getattr(handle, "inode", None)
    ino = getattr(inode, "ino", 0)
    if journal is None or not ino:
        return 0
    with machine.span("kernel.vfs.journal", "fsync", ino=ino):
        pages, records = journal.fsync(ino)
        _charge_flush(machine, pages, records)
    return 0


def sys_fdatasync(kernel: "Kernel", thread: "KThread", fd: int):
    handle = thread.process.fd_table.get(fd)
    machine = kernel.machine
    machine.charge("fdatasync_base")
    journal = machine.storage.journal
    inode = getattr(handle, "inode", None)
    ino = getattr(inode, "ino", 0)
    if journal is None or not ino:
        return 0
    with machine.span("kernel.vfs.journal", "fdatasync", ino=ino):
        pages, records = journal.fdatasync(ino)
        _charge_flush(machine, pages, records)
    return 0


def sys_sync(kernel: "Kernel", thread: "KThread"):
    machine = kernel.machine
    machine.charge("sync_base")
    journal = machine.storage.journal
    if journal is None:
        return 0
    with machine.span("kernel.vfs.journal", "sync"):
        pages, records = journal.sync_all()
        _charge_flush(machine, pages, records)
    return 0


def sys_stat(kernel: "Kernel", thread: "KThread", path: str):
    node = kernel.vfs.resolve(path, thread.process.cwd)
    return {"kind": node.kind, "size": node.size_bytes}


def sys_getdents(kernel: "Kernel", thread: "KThread", fd: int):
    handle = thread.process.fd_table.get(fd)
    if not isinstance(handle, DirectoryHandle):
        raise SyscallError(EINVAL, "getdents on non-directory")
    return handle.readdir()


def sys_kill(kernel: "Kernel", thread: "KThread", pid: int, signum: int):
    target = kernel.processes.get(pid)
    kernel.send_signal_to_process(target, signum, sender_pid=thread.process.pid)
    return 0


def sys_sigaction(
    kernel: "Kernel", thread: "KThread", signum: int, handler: object
):
    """Returns the previous handler."""
    try:
        previous = thread.process.signals.set_action(
            signum, SigAction(handler=handler, persona=thread.persona.name)
        )
    except ValueError as exc:
        raise SyscallError(EINVAL, str(exc)) from None
    return previous.handler


def sys_select(
    kernel: "Kernel",
    thread: "KThread",
    read_fds: List[int],
    write_fds: Optional[List[int]] = None,
    timeout_ns: Optional[float] = 0,
):
    return do_select(kernel, thread, read_fds, write_fds or [], timeout_ns)


def sys_sched_yield(kernel: "Kernel", thread: "KThread"):
    kernel.machine.charge("sched_switch")
    kernel.machine.scheduler.yield_control()
    return 0


def sys_nanosleep(kernel: "Kernel", thread: "KThread", duration_ns: float):
    kernel.machine.scheduler.sleep(duration_ns)
    return 0


def sys_clone(
    kernel: "Kernel", thread: "KThread", fn: Callable, name: str = "thread"
):
    """Thread-creating clone (CLONE_VM|CLONE_THREAD)."""
    new_thread = kernel.processes.spawn_kthread(thread.process, fn, name=name)
    return new_thread.tid


def sys_socket(
    kernel: "Kernel",
    thread: "KThread",
    domain: int = AF_UNIX,
    sock_type: int = SOCK_STREAM,
):
    """The BSD socket family entry point shared by both personas.

    ``AF_UNIX`` keeps the historical local-socket behaviour;
    ``AF_INET`` mints an INET socket on the machine's virtual netstack
    (built lazily on first use).  Either way the descriptor is minted
    through the one checked ``fd_alloc`` path (RLIMIT_NOFILE => EMFILE);
    an EMFILE after the socket object exists rolls its buffers back.
    """
    if domain == AF_INET:
        sock: OpenFile = INetSocket(kernel.machine, sock_type)
    elif domain == AF_UNIX:
        sock = UnixSocket(kernel.machine)
    else:
        raise SyscallError(EINVAL, f"address family {domain}")
    try:
        return fd_alloc(thread.process, sock)
    except SyscallError:
        sock.decref()  # release socket buffers reserved from the envelope
        raise


def _sock_for(thread: "KThread", fd: int) -> UnixSocket:
    handle = thread.process.fd_table.get(fd)
    if not isinstance(handle, UnixSocket):
        raise SyscallError(EINVAL, "not a socket")
    return handle


def _any_sock_for(thread: "KThread", fd: int) -> OpenFile:
    handle = thread.process.fd_table.get(fd)
    if not isinstance(handle, (UnixSocket, INetSocket)):
        raise SyscallError(ENOTSOCK, "not a socket")
    return handle


def sys_bind(
    kernel: "Kernel", thread: "KThread", fd: int, addr: object, backlog: int = 8
):
    """Polymorphic bind: a string is an AF_UNIX path (bind+listen, the
    historical behaviour), an ``(ip, port)`` pair binds an INET socket."""
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        ip, port = addr  # type: ignore[misc]
        handle.bind((str(ip), int(port)))
        return 0
    bind(kernel.machine, handle, str(addr), backlog)
    return 0


def sys_listen(kernel: "Kernel", thread: "KThread", fd: int, backlog: int = 128):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        handle.listen(backlog)
        return 0
    # AF_UNIX bind() already listens in this model; listen() adjusts the
    # backlog of the existing listener.
    if handle.listener is None:
        raise SyscallError(EOPNOTSUPP, "listen before bind")
    handle.listener.backlog = backlog
    return 0


def sys_connect(kernel: "Kernel", thread: "KThread", fd: int, addr: object):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        ip, port = addr  # type: ignore[misc]
        handle.connect((str(ip), int(port)))
        return 0
    connect(kernel.machine, handle, str(addr))
    return 0


def sys_accept(kernel: "Kernel", thread: "KThread", fd: int):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        peer: OpenFile = handle.accept()
    else:
        peer = accept(kernel.machine, handle)
    try:
        return fd_alloc(thread.process, peer)
    except SyscallError:
        peer.decref()
        raise


def sys_sendto(
    kernel: "Kernel",
    thread: "KThread",
    fd: int,
    data: bytes,
    addr: object = None,
):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        dst = None
        if addr is not None:
            ip, port = addr  # type: ignore[misc]
            dst = (str(ip), int(port))
        return handle.sendto(data, dst)
    if addr is not None:
        raise SyscallError(EINVAL, "sendto with address on AF_UNIX stream")
    return handle.write(data)


def sys_recvfrom(kernel: "Kernel", thread: "KThread", fd: int, nbytes: int):
    """Returns ``(data, source_address)``."""
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        return handle.recvfrom(nbytes)
    return handle.read(nbytes), None


def sys_setsockopt(
    kernel: "Kernel",
    thread: "KThread",
    fd: int,
    level: int,
    option: int,
    value: object = 1,
):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        handle.setsockopt(level, option, value)
    return 0


def sys_getsockopt(
    kernel: "Kernel", thread: "KThread", fd: int, level: int, option: int
):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        return handle.getsockopt(level, option)
    return 0


def sys_getsockname(kernel: "Kernel", thread: "KThread", fd: int):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        return handle.getsockname()
    return handle.bound_path


def sys_shutdown(kernel: "Kernel", thread: "KThread", fd: int, how: int = 2):
    handle = _any_sock_for(thread, fd)
    if isinstance(handle, INetSocket):
        handle.shutdown(how)
        return 0
    # AF_UNIX: SHUT_WR/RDWR close the transmit stream (peer reads EOF),
    # SHUT_RD closes receive (our reads return EOF, peer writes EPIPE).
    if how not in (0, 1, 2):
        raise SyscallError(EINVAL, f"shutdown how={how}")
    if how >= 1 and handle._tx is not None:
        handle._tx.open = False
        handle._tx.waitq.wake_all()
    if how in (0, 2) and handle._rx is not None:
        handle._rx.open = False
        handle._rx.waitq.wake_all()
    return 0


def sys_socketpair(kernel: "Kernel", thread: "KThread"):
    left, right = socketpair(kernel.machine)
    process = thread.process
    lfd = fd_alloc(process, left)
    try:
        rfd = fd_alloc(process, right)
    except SyscallError:
        process.fd_table.close(lfd)
        raise
    return lfd, rfd


def sys_getrlimit(kernel: "Kernel", thread: "KThread", which: int):
    """Returns ``(soft, hard)``; RLIM_INFINITY for unlimited."""
    try:
        return thread.process.rlimits.get(which)
    except ValueError as exc:
        raise SyscallError(EINVAL, str(exc)) from None


def sys_setrlimit(
    kernel: "Kernel",
    thread: "KThread",
    which: int,
    soft: int,
    hard: Optional[int] = None,
):
    """Set a limit and sync the kernel structures that enforce it.

    ``RLIMIT_NOFILE`` lands in the fd table (enforced by
    :func:`~repro.kernel.files.fd_alloc` on every descriptor mint),
    ``RLIMIT_AS`` in the address space (enforced by
    :meth:`~repro.kernel.mm.AddressSpace.map`), ``RLIMIT_NPROC`` is read
    at fork/posix_spawn time.
    """
    process = thread.process
    try:
        process.rlimits.set(which, soft, hard)
    except ValueError as exc:
        raise SyscallError(EINVAL, str(exc)) from None
    if which == RLIMIT_NOFILE:
        limit = process.rlimits.soft(RLIMIT_NOFILE)
        process.fd_table.nofile_limit = (
            FDTable.MAX_FDS if limit is None else min(limit, FDTable.MAX_FDS)
        )
    elif which == RLIMIT_AS:
        process.address_space.as_limit_bytes = process.rlimits.soft(RLIMIT_AS)
    return 0


def sys_set_persona(kernel: "Kernel", thread: "KThread", persona_name: str):
    """Cider's persona-switch syscall (registered on Cider kernels only;
    on a vanilla kernel the number is unassigned and returns ENOSYS)."""
    return kernel.do_set_persona(thread, persona_name)


def _register_all(table: DispatchTable) -> None:
    table.register(NR_exit, "exit", sys_exit)
    table.register(NR_fork, "fork", sys_fork)
    table.register(NR_read, "read", sys_read)
    table.register(NR_write, "write", sys_write)
    table.register(NR_open, "open", sys_open)
    table.register(NR_close, "close", sys_close)
    table.register(NR_waitpid, "waitpid", sys_waitpid)
    table.register(NR_unlink, "unlink", sys_unlink)
    table.register(NR_rename, "rename", sys_rename)
    table.register(NR_sync, "sync", sys_sync)
    table.register(NR_fsync, "fsync", sys_fsync)
    table.register(NR_fdatasync, "fdatasync", sys_fdatasync)
    table.register(NR_execve, "execve", sys_execve)
    table.register(NR_lseek, "lseek", sys_lseek)
    table.register(NR_getpid, "getpid", sys_getpid)
    table.register(NR_kill, "kill", sys_kill)
    table.register(NR_mkdir, "mkdir", sys_mkdir)
    table.register(NR_rmdir, "rmdir", sys_rmdir)
    table.register(NR_dup, "dup", sys_dup)
    table.register(NR_pipe, "pipe", sys_pipe)
    table.register(NR_ioctl, "ioctl", sys_ioctl)
    table.register(NR_dup2, "dup2", sys_dup2)
    table.register(NR_setrlimit, "setrlimit", sys_setrlimit)
    table.register(NR_getrlimit, "getrlimit", sys_getrlimit)
    table.register(NR_getppid, "getppid", sys_getppid)
    table.register(NR_sigaction, "sigaction", sys_sigaction)
    table.register(NR_getdents, "getdents", sys_getdents)
    table.register(NR_select, "select", sys_select)
    table.register(NR_sched_yield, "sched_yield", sys_sched_yield)
    table.register(NR_nanosleep, "nanosleep", sys_nanosleep)
    table.register(NR_stat, "stat", sys_stat)
    table.register(NR_gettid, "gettid", sys_gettid)
    table.register(NR_clone, "clone", sys_clone)
    table.register(NR_socket, "socket", sys_socket)
    table.register(NR_bind, "bind", sys_bind)
    table.register(NR_connect, "connect", sys_connect)
    table.register(NR_listen, "listen", sys_listen)
    table.register(NR_accept, "accept", sys_accept)
    table.register(NR_getsockname, "getsockname", sys_getsockname)
    table.register(NR_socketpair, "socketpair", sys_socketpair)
    table.register(NR_sendto, "sendto", sys_sendto)
    table.register(NR_recvfrom, "recvfrom", sys_recvfrom)
    table.register(NR_shutdown, "shutdown", sys_shutdown)
    table.register(NR_setsockopt, "setsockopt", sys_setsockopt)
    table.register(NR_getsockopt, "getsockopt", sys_getsockopt)
