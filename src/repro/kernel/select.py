"""select(2): readiness polling across descriptors.

The cost model charges ``select_base`` plus ``select_per_fd`` for each
descriptor scanned.  On the XNU-native kernel personality the per-fd cost
is far higher (see :func:`repro.hw.profiles.ipad_mini`), reproducing the
paper's observation that the iPad mini's select "increased linearly with
the number of file descriptors to more than 10 times the cost" and failed
outright at 250 descriptors, while the same iOS binary under Cider matched
vanilla Android (Fig. 5 group 4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:
    from .kernel import Kernel
    from .process import KThread


def do_select(
    kernel: "Kernel",
    thread: "KThread",
    read_fds: List[int],
    write_fds: List[int],
    timeout_ns: Optional[float] = 0,
) -> Tuple[List[int], List[int]]:
    """Scan descriptors; optionally block until one is ready.

    ``timeout_ns=0`` polls, ``None`` blocks indefinitely.
    Returns (readable_fds, writable_fds).
    """
    machine = kernel.machine
    fd_table = thread.process.fd_table
    nfds = len(read_fds) + len(write_fds)
    readers = [(fd, fd_table.get(fd)) for fd in read_fds]
    writers = [(fd, fd_table.get(fd)) for fd in write_fds]

    while True:
        machine.charge("select_base")
        if nfds:
            machine.charge("select_per_fd", nfds)
        ready_r = [fd for fd, f in readers if f.poll_readable()]
        ready_w = [fd for fd, f in writers if f.poll_writable()]
        if ready_r or ready_w or timeout_ns == 0:
            return ready_r, ready_w
        waitqs = [f.read_waitq for _, f in readers]
        waitqs += [f.write_waitq for _, f in writers]
        woken = machine.scheduler.block_on_any(waitqs, timeout_ns)
        kernel.check_interrupted(thread)
        if not woken:  # timed out
            return [], []
        # Loop: re-scan readiness (wakeups can be spurious after a
        # competing reader drained the data).
