"""Memory-pressure kill daemons: jetsam and the lowmemorykiller.

When a machine carries a :class:`~repro.sim.resources.ResourceEnvelope`,
two kernel daemons watch its pressure level and shed load the way each
persona's native OS does:

* **jetsam** (XNU): handles the *iOS* population.  An episode runs in
  three phases — (1) deliver memory warnings to every registered
  listener (UIKit turns these into ``didReceiveMemoryWarning``), (2) run
  kernel cache evictors (dyld's shared-cache eviction registers here),
  and only then (3) kill, lowest jetsam priority band first, largest
  memory footprint first within a band.  Processes in the SYSTEM band
  (launchd) are never killed.
* **lowmemorykiller** (Android): handles everything that is *not* an iOS
  process.  Victims are chosen purely by ``oom_adj`` badness — highest
  adj first, largest footprint within a class — mirroring the driver's
  "no warnings, just SIGKILL" policy.  Negative adj (system_server)
  is never killed.

Both daemons are event-driven: they sleep on a wait queue and are woken
by the envelope's pressure callbacks, so a machine that never crosses the
warning watermark never runs them (zero cost when quiet).  Selection is
completely deterministic — same seed and workload produce byte-identical
kill logs (:meth:`ResourceEnvelope.kill_log`) — because victims are
ordered by (band/adj, footprint, pid) with no randomness and the
cooperative scheduler serialises daemon wakeups FIFO.

Kills follow the watchdog pattern: tombstone via
:meth:`Kernel.report_crash`, then :meth:`finalize_process`, which tears
down the address space and *releases the RAM back to the envelope* — that
is what ends an episode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..sim import WaitQueue
from ..sim.resources import (
    PRESSURE_CRITICAL,
    PRESSURE_NORMAL,
    PRESSURE_WARNING,
    ResourceEnvelope,
)
from .signals import SIGKILL

if TYPE_CHECKING:
    from .kernel import Kernel
    from .process import Process

# -- XNU jetsam priority bands (a compressed version of the real table) ---------
JETSAM_PRIORITY_IDLE = 0
JETSAM_PRIORITY_BACKGROUND = 3
JETSAM_PRIORITY_DEFAULT = 3
JETSAM_PRIORITY_FOREGROUND = 10
#: Never killed (launchd and friends).
JETSAM_PRIORITY_SYSTEM = 18

# -- Android lowmemorykiller oom_adj classes ------------------------------------
#: Never killed (system_server, init).
OOM_ADJ_SYSTEM = -16
OOM_ADJ_FOREGROUND = 0
OOM_ADJ_VISIBLE = 1
OOM_ADJ_BACKGROUND = 8

#: lowmemorykiller minfree-style thresholds: at ``warning`` only cached /
#: background apps (adj >= 8) are fair game; at ``critical`` everything
#: with a non-negative adj is.
_LMK_MIN_ADJ = {PRESSURE_WARNING: OOM_ADJ_BACKGROUND, PRESSURE_CRITICAL: 0}


def _persona_name(process: "Process") -> str:
    try:
        return process.main_thread().persona.name
    except Exception:  # pragma: no cover - threadless corpse
        return "?"


class _PressureDaemon:
    """Shared machinery: an event-driven kernel daemon with a wait queue.

    ``on_pressure`` callbacks run synchronously inside whatever thread
    crossed the watermark; they only set a flag and wake the daemon, so
    the actual episode handling happens in daemon context at the next
    deterministic scheduling point.
    """

    name = "pressure"

    def __init__(self, kernel: "Kernel", envelope: ResourceEnvelope) -> None:
        self.kernel = kernel
        self.envelope = envelope
        self.waitq = WaitQueue(f"{self.name}.pressure")
        self._pending = False
        self.sim_thread: Optional[object] = None
        envelope.on_pressure(self._on_pressure)

    def start(self) -> "_PressureDaemon":
        self.sim_thread = self.kernel.spawn_kernel_daemon(self._run, self.name)
        return self

    # -- wiring ----------------------------------------------------------------

    def _on_pressure(self, level: str) -> None:
        self._pending = True
        self.waitq.wake_all()

    def _run(self) -> None:
        machine = self.kernel.machine
        scheduler = machine.scheduler
        while True:
            if not self._pending:
                scheduler.block_on(self.waitq)
            self._pending = False
            with machine.span(
                f"kernel.pressure.{self.name}", "episode"
            ):
                self.handle_episode()

    def _count(self, metric: str, amount: int = 1) -> None:
        obs = self.kernel.machine.obs
        if obs is not None:
            obs.metrics.counter(metric).inc(amount)

    def _kill(self, process: "Process", reason: str, **detail: object) -> None:
        """Watchdog-pattern kill: tombstone, finalize, log."""
        with self.kernel.machine.span(
            f"kernel.pressure.{self.name}", "kill",
            pid=process.pid, victim=process.name,
        ):
            self.kernel.report_crash(
                process, SIGKILL, reason, daemon=self.name, **detail
            )
            self.envelope.record_kill(
                self.name,
                process.pid,
                process.name,
                _persona_name(process),
                reason,
                process.address_space.total_bytes,
                **detail,
            )
            process.dying = SIGKILL
            self.kernel.processes.finalize_process(process, 128 + SIGKILL)

    # -- subclass interface -------------------------------------------------------

    def handle_episode(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class JetsamDaemon(_PressureDaemon):
    """XNU's memorystatus/jetsam thread for the iOS population."""

    name = "jetsam"

    def __init__(self, kernel: "Kernel", envelope: ResourceEnvelope) -> None:
        super().__init__(kernel, envelope)
        #: pids warned during the current episode (cleared when the
        #: pressure level returns to normal) — one warning per episode.
        self._warned: set = set()

    # victim ordering: lowest band, then largest footprint, then lowest pid
    def _victims(self) -> List["Process"]:
        candidates = [
            p
            for p in self.kernel.processes.live_processes()
            if _persona_name(p) == "ios"
            and p.jetsam_priority < JETSAM_PRIORITY_SYSTEM
        ]
        candidates.sort(
            key=lambda p: (
                p.jetsam_priority,
                -p.address_space.total_bytes,
                p.pid,
            )
        )
        return candidates

    def _send_warnings(self, level: str) -> int:
        """Phase 1: let apps shed caches before anyone dies."""
        sent = 0
        listeners = self.kernel.memory_pressure_listeners
        for pid in sorted(listeners):
            if pid in self._warned:
                continue
            process = self.kernel.processes.table.get(pid)
            if process is None or not process.alive:
                continue
            self._warned.add(pid)
            callback = listeners.get(pid)
            if callback is None:
                continue
            self.kernel.machine.emit(
                "resource", "memory_warning", pid=pid, level=level
            )
            callback(level)
            sent += 1
        if sent:
            self._count("resources.memory.warnings", sent)
        return sent

    def _run_evictors(self) -> int:
        """Phase 2: kernel caches (dyld shared cache) give memory back."""
        freed = 0
        for evictor in list(self.kernel.pressure_evictors):
            freed += int(evictor() or 0)
        if freed:
            self.kernel.machine.emit(
                "resource", "evicted", bytes=freed, daemon=self.name
            )
        return freed

    def handle_episode(self) -> None:
        envelope = self.envelope
        level = envelope.pressure_level()
        if level == PRESSURE_NORMAL:
            self._warned.clear()
            return
        self._send_warnings(level)
        # Warnings may have freed enough; re-check before evicting/killing.
        if envelope.pressure_level() == PRESSURE_CRITICAL:
            self._run_evictors()
        while envelope.pressure_level() == PRESSURE_CRITICAL:
            victims = self._victims()
            if not victims:
                break
            victim = victims[0]
            self._kill(
                victim,
                "jetsam: highest memory pressure",
                band=victim.jetsam_priority,
            )
            self._count("resources.jetsam.kills")
        if envelope.pressure_level() == PRESSURE_NORMAL:
            self._warned.clear()


class LowMemoryKiller(_PressureDaemon):
    """Android's lowmemorykiller for the non-iOS population."""

    name = "lowmemorykiller"

    def _victims(self, min_adj: int) -> List["Process"]:
        candidates = [
            p
            for p in self.kernel.processes.live_processes()
            if _persona_name(p) != "ios" and p.oom_adj >= min_adj
        ]
        # highest badness first, then largest footprint, then lowest pid
        candidates.sort(
            key=lambda p: (-p.oom_adj, -p.address_space.total_bytes, p.pid)
        )
        return candidates

    def handle_episode(self) -> None:
        envelope = self.envelope
        while True:
            level = envelope.pressure_level()
            min_adj = _LMK_MIN_ADJ.get(level)
            if min_adj is None:  # back to normal: episode over
                return
            victims = self._victims(min_adj)
            if not victims:
                return
            victim = victims[0]
            self._kill(
                victim,
                f"lowmemorykiller: adj {victim.oom_adj} at {level} pressure",
                adj=victim.oom_adj,
            )
            self._count("resources.lmk.kills")


def start_pressure_daemons(
    kernel: "Kernel",
) -> Tuple[JetsamDaemon, LowMemoryKiller]:
    """Spawn both daemons on a kernel whose machine has an envelope.

    jetsam is registered and spawned *first* so that, when one pressure
    event wakes both daemons, jetsam's episode (warnings → eviction →
    iOS kills) runs before the lowmemorykiller looks for Android victims
    — deterministically, by FIFO scheduling order.
    """
    envelope = kernel.machine.resources
    if envelope is None:
        raise ValueError(
            "start_pressure_daemons: install a ResourceEnvelope first "
            "(machine.install_resources())"
        )
    jetsam = JetsamDaemon(kernel, envelope)
    lmk = LowMemoryKiller(kernel, envelope)
    jetsam.start()
    lmk.start()
    return jetsam, lmk
