"""Address spaces and memory accounting.

The simulation does not store page contents; it tracks the *structure* of
an address space — the list of mapped regions (VMAs) and their page
counts — because that structure is what the paper's fork measurements
hinge on: an iOS process whose dyld mapped 90 MB across 115 libraries pays
for duplicating every page-table entry on fork (~1 ms of the 3.75 ms
fork+exit time, §6.2), while regions backed by the dyld shared cache are a
shared submap on XNU and are not copied per-process.

Resource accounting: when the machine carries a
:class:`~repro.sim.resources.ResourceEnvelope`, every :meth:`map` /
:meth:`fork_copy` charges the machine-wide RAM budget (shared-cache
regions are charged once, refcounted) and every :meth:`unmap` /
:meth:`unmap_all` releases it — this is what lets jetsam and the
lowmemorykiller observe real scarcity.  Per-process ``RLIMIT_AS`` is
enforced here too.  Both checks cost one ``is None`` test when off and
never charge virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .errno import ENOMEM, SyscallError

if TYPE_CHECKING:
    from ..hw.machine import Machine
    from ..sim.resources import ResourceEnvelope

PAGE_SIZE = 4096


class CowSource:
    """The shared physical pages behind a family of COW mappings.

    Created when :meth:`AddressSpace.fork_copy` runs in COW mode: the
    parent's RAM reservation moves here and both parent and child VMAs
    hold a reference — refcounted exactly like shared-cache segments, so
    the underlying bytes are released only when the *last* mapping goes
    (a parent exiting before its child must not free pages the child
    still reads).
    """

    __slots__ = ("size_bytes", "refs", "charged")

    def __init__(self, size_bytes: int, charged: bool) -> None:
        self.size_bytes = size_bytes
        self.refs = 0
        #: True when ``size_bytes`` is held against the RAM budget.
        self.charged = charged


class VMA:
    """One mapped virtual memory region.

    ``__slots__``: dyld creates ~115 of these per Mach-O exec and fork
    duplicates all of them — the hottest allocation after trace events.
    """

    __slots__ = (
        "name",
        "size_bytes",
        "writable",
        "shared_cache",
        "charged",
        "shared_key",
        "cow_source",
        "cow_broken",
        "cow_charged_bytes",
    )

    def __init__(
        self,
        name: str,
        size_bytes: int,
        writable: bool = False,
        shared_cache: bool = False,
    ) -> None:
        if size_bytes < 0:
            raise ValueError("negative mapping size")
        self.name = name
        self.size_bytes = size_bytes
        self.writable = writable
        #: Backed by the dyld shared cache: lives in a kernel-shared
        #: submap, so fork does not duplicate its page tables.
        self.shared_cache = shared_cache
        #: Resource-envelope bookkeeping: True when these bytes were
        #: charged to the machine RAM budget; for shared-cache regions the
        #: refcounted reservation key instead.
        self.charged = False
        self.shared_key: Optional[str] = None
        #: COW: the shared page source this mapping references (None for
        #: eagerly copied/private regions) and the page indices privately
        #: re-copied after a write fault (each holds one page of RAM).
        self.cow_source: Optional[CowSource] = None
        self.cow_broken: Optional[set] = None
        #: Bytes charged to the RAM budget by COW breaks on this mapping
        #: (one page per break); released with the mapping.
        self.cow_charged_bytes = 0

    @property
    def pages(self) -> int:
        return (self.size_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    @property
    def cow_broken_bytes(self) -> int:
        """Bytes privately held by COW-broken pages of this mapping."""
        return len(self.cow_broken) * PAGE_SIZE if self.cow_broken else 0

    def __repr__(self) -> str:
        tag = " shared-cache" if self.shared_cache else ""
        if self.cow_source is not None:
            tag += f" cow({len(self.cow_broken or ())} broken)"
        return f"<VMA {self.name!r} {self.size_bytes >> 10}KB{tag}>"


class AddressSpace:
    """The set of VMAs belonging to one process.

    ``machine`` is optional (tests build bare address spaces); when
    present, :meth:`map` is an ``mm.map`` / ``mm.reserve`` fault-injection
    point so seeded plans can simulate transient allocation failure and
    forced scarcity verdicts (ENOMEM), and the machine's resource
    envelope — when installed — is charged for every mapping.
    """

    def __init__(self, machine: Optional["Machine"] = None) -> None:
        self._vmas: List[VMA] = []
        self._machine = machine
        #: RLIMIT_AS soft limit in bytes (None = unlimited); kept in sync
        #: by the setrlimit trap.
        self.as_limit_bytes: Optional[int] = None

    def _envelope(self) -> Optional["ResourceEnvelope"]:
        machine = self._machine
        return machine.resources if machine is not None else None

    def map(
        self,
        name: str,
        size_bytes: int,
        writable: bool = False,
        shared_cache: bool = False,
    ) -> VMA:
        machine = self._machine
        if machine is not None and machine.faults is not None:
            outcome = machine.faults.check(
                "mm.map", region=name, size_bytes=size_bytes
            )
            if outcome is not None:
                if outcome.kind == "delay":
                    machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        f"fault injected: map {name!r}",
                    )
                else:
                    raise SyscallError(
                        ENOMEM, f"fault injected: map {name!r}"
                    )
            # Forced scarcity verdict: behaves exactly like an exhausted
            # RAM budget, without needing a full envelope.
            outcome = machine.faults.check(
                "mm.reserve", region=name, size_bytes=size_bytes
            )
            if outcome is not None:
                if outcome.kind == "delay":
                    machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        f"fault injected: reserve {name!r}",
                    )
                else:
                    raise SyscallError(
                        ENOMEM, f"fault injected: reserve {name!r}"
                    )
        if (
            self.as_limit_bytes is not None
            and self.total_bytes + size_bytes > self.as_limit_bytes
        ):
            raise SyscallError(
                ENOMEM, f"RLIMIT_AS: map {name!r} ({size_bytes} bytes)"
            )
        vma = VMA(name, size_bytes, writable, shared_cache)
        res = self._envelope()
        if res is not None:
            self._reserve(res, vma)
        self._vmas.append(vma)
        return vma

    @staticmethod
    def _reserve(res: "ResourceEnvelope", vma: VMA) -> None:
        """Charge one VMA to the envelope, or raise ENOMEM."""
        if vma.shared_cache:
            if not res.reserve_shared(vma.name, vma.size_bytes):
                raise SyscallError(
                    ENOMEM, f"out of memory: map {vma.name!r}"
                )
            vma.shared_key = vma.name
        else:
            if not res.reserve_ram(vma.size_bytes, owner=vma.name):
                raise SyscallError(
                    ENOMEM, f"out of memory: map {vma.name!r}"
                )
            vma.charged = True

    @staticmethod
    def _release(res: "ResourceEnvelope", vma: VMA) -> None:
        if vma.shared_key is not None:
            res.release_shared(vma.shared_key)
            vma.shared_key = None
        elif vma.charged:
            res.release_ram(vma.size_bytes)
            vma.charged = False
        if vma.cow_charged_bytes:
            res.release_ram(vma.cow_charged_bytes)
            vma.cow_charged_bytes = 0

    @staticmethod
    def _drop_cow_ref(res: Optional["ResourceEnvelope"], vma: VMA) -> None:
        """Release this mapping's reference on its COW page source.

        The source's reservation is freed only when the *last* referencing
        mapping goes away — a parent exiting before its child must not free
        pages the child still reads.
        """
        source = vma.cow_source
        if source is None:
            return
        vma.cow_source = None
        source.refs -= 1
        if source.refs == 0 and source.charged:
            if res is not None:
                res.release_ram(source.size_bytes)
            source.charged = False

    def unmap(self, vma: VMA) -> None:
        self._vmas.remove(vma)
        res = self._envelope()
        if res is not None:
            self._release(res, vma)
        self._drop_cow_ref(res, vma)

    def unmap_all(self) -> None:
        """exec() tears down the old image."""
        res = self._envelope()
        for vma in self._vmas:
            if res is not None:
                self._release(res, vma)
            self._drop_cow_ref(res, vma)
        self._vmas.clear()

    def find(self, name: str) -> Optional[VMA]:
        for vma in self._vmas:
            if vma.name == name:
                return vma
        return None

    @property
    def total_bytes(self) -> int:
        return sum(vma.size_bytes for vma in self._vmas)

    @property
    def total_pages(self) -> int:
        return sum(vma.pages for vma in self._vmas)

    @property
    def copied_on_fork_pages(self) -> int:
        """Pages whose PTEs fork must duplicate (shared cache excluded)."""
        return sum(vma.pages for vma in self._vmas if not vma.shared_cache)

    def fork_copy(self, cow: bool = False) -> "AddressSpace":
        """Duplicate the structure (the copy cost is charged by fork).

        Eager mode (``cow=False``): with a resource envelope installed the
        child's private regions charge the RAM budget (this is why 32 iOS
        personas cost ~2.9 GB in the paper's accounting) and shared-cache
        regions only bump the submap refcount; an exhausted budget makes
        fork fail with ENOMEM, leaving the envelope balanced.

        COW mode (``cow=True``): private regions are not duplicated — the
        parent's reservation moves into a refcounted :class:`CowSource`
        that both sides reference, and the child charges *nothing* at fork
        time.  Each side pays one page of RAM (and ``cow_break_per_page``
        of time) per page it later writes, via :meth:`touch`.  Shared-cache
        regions behave identically in both modes.
        """
        child = AddressSpace(self._machine)
        child.as_limit_bytes = self.as_limit_bytes
        res = self._envelope()
        copied: List[VMA] = []
        for v in self._vmas:
            nv = VMA(v.name, v.size_bytes, v.writable, v.shared_cache)
            if cow and not v.shared_cache:
                source = v.cow_source
                if source is None:
                    # First COW fork of this region: the parent's eager
                    # reservation (if any) moves into the shared source.
                    source = CowSource(v.size_bytes, charged=v.charged)
                    source.refs = 1
                    v.cow_source = source
                    v.charged = False
                    if v.cow_broken is None:
                        v.cow_broken = set()
                source.refs += 1
                nv.cow_source = source
                nv.cow_broken = set()
            elif res is not None:
                try:
                    self._reserve(res, nv)
                except SyscallError:
                    for done in copied:
                        if done.cow_source is not None:
                            # Undo the refcount bump; the source stays
                            # charged (the parent still references it).
                            done.cow_source.refs -= 1
                        else:
                            self._release(res, done)
                    raise SyscallError(
                        ENOMEM, "out of memory: fork address space"
                    ) from None
            copied.append(nv)
        child._vmas = copied
        return child

    def touch(self, vma: VMA, page_index: int = 0) -> bool:
        """Simulate the first write to one page of a COW mapping.

        Returns True when the write broke COW for the page (charging one
        page of RAM to the envelope and ``cow_break_per_page`` of virtual
        time); False when the mapping is not COW or the page was already
        broken.  Raises ENOMEM — leaving the envelope balanced — when the
        RAM budget cannot cover the private page copy.
        """
        if vma.cow_source is None or vma.cow_broken is None:
            return False
        if not 0 <= page_index < vma.pages:
            raise ValueError(
                f"page {page_index} out of range for {vma!r}"
            )
        if page_index in vma.cow_broken:
            return False
        res = self._envelope()
        if res is not None:
            if not res.reserve_ram(PAGE_SIZE, owner=f"cow:{vma.name}"):
                raise SyscallError(
                    ENOMEM, f"out of memory: COW break {vma.name!r}"
                )
            vma.cow_charged_bytes += PAGE_SIZE
        machine = self._machine
        if machine is not None:
            machine.charge("cow_break_per_page")
        vma.cow_broken.add(page_index)
        return True

    def touch_range(self, vma: VMA, start_page: int, count: int) -> int:
        """Break COW for ``count`` pages starting at ``start_page``.

        Returns the number of pages newly broken.  If the RAM budget is
        exhausted mid-range, every page broken *by this call* is rolled
        back (released and un-broken) before the ENOMEM propagates, so a
        failed large write leaves the envelope exactly as it found it.
        """
        broken_here: List[int] = []
        res = self._envelope()
        try:
            for page in range(start_page, start_page + count):
                if self.touch(vma, page):
                    broken_here.append(page)
        except SyscallError:
            for page in broken_here:
                vma.cow_broken.discard(page)  # type: ignore[union-attr]
                if res is not None:
                    res.release_ram(PAGE_SIZE)
                    vma.cow_charged_bytes -= PAGE_SIZE
            raise
        return len(broken_here)

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    def summary(self) -> Dict[str, int]:
        return {vma.name: vma.size_bytes for vma in self._vmas}
