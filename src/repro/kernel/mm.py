"""Address spaces and memory accounting.

The simulation does not store page contents; it tracks the *structure* of
an address space — the list of mapped regions (VMAs) and their page
counts — because that structure is what the paper's fork measurements
hinge on: an iOS process whose dyld mapped 90 MB across 115 libraries pays
for duplicating every page-table entry on fork (~1 ms of the 3.75 ms
fork+exit time, §6.2), while regions backed by the dyld shared cache are a
shared submap on XNU and are not copied per-process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .errno import ENOMEM, SyscallError

if TYPE_CHECKING:
    from ..hw.machine import Machine

PAGE_SIZE = 4096


class VMA:
    """One mapped virtual memory region."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        writable: bool = False,
        shared_cache: bool = False,
    ) -> None:
        if size_bytes < 0:
            raise ValueError("negative mapping size")
        self.name = name
        self.size_bytes = size_bytes
        self.writable = writable
        #: Backed by the dyld shared cache: lives in a kernel-shared
        #: submap, so fork does not duplicate its page tables.
        self.shared_cache = shared_cache

    @property
    def pages(self) -> int:
        return (self.size_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    def __repr__(self) -> str:
        tag = " shared-cache" if self.shared_cache else ""
        return f"<VMA {self.name!r} {self.size_bytes >> 10}KB{tag}>"


class AddressSpace:
    """The set of VMAs belonging to one process.

    ``machine`` is optional (tests build bare address spaces); when
    present, :meth:`map` is an ``mm.map`` fault-injection point so seeded
    plans can simulate transient allocation failure (ENOMEM).
    """

    def __init__(self, machine: Optional["Machine"] = None) -> None:
        self._vmas: List[VMA] = []
        self._machine = machine

    def map(
        self,
        name: str,
        size_bytes: int,
        writable: bool = False,
        shared_cache: bool = False,
    ) -> VMA:
        machine = self._machine
        if machine is not None and machine.faults is not None:
            outcome = machine.faults.check(
                "mm.map", region=name, size_bytes=size_bytes
            )
            if outcome is not None:
                if outcome.kind == "delay":
                    machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        f"fault injected: map {name!r}",
                    )
                else:
                    raise SyscallError(
                        ENOMEM, f"fault injected: map {name!r}"
                    )
        vma = VMA(name, size_bytes, writable, shared_cache)
        self._vmas.append(vma)
        return vma

    def unmap(self, vma: VMA) -> None:
        self._vmas.remove(vma)

    def unmap_all(self) -> None:
        """exec() tears down the old image."""
        self._vmas.clear()

    def find(self, name: str) -> Optional[VMA]:
        for vma in self._vmas:
            if vma.name == name:
                return vma
        return None

    @property
    def total_bytes(self) -> int:
        return sum(vma.size_bytes for vma in self._vmas)

    @property
    def total_pages(self) -> int:
        return sum(vma.pages for vma in self._vmas)

    @property
    def copied_on_fork_pages(self) -> int:
        """Pages whose PTEs fork must duplicate (shared cache excluded)."""
        return sum(vma.pages for vma in self._vmas if not vma.shared_cache)

    def fork_copy(self) -> "AddressSpace":
        """Duplicate the structure (the copy cost is charged by fork)."""
        child = AddressSpace(self._machine)
        child._vmas = [
            VMA(v.name, v.size_bytes, v.writable, v.shared_cache)
            for v in self._vmas
        ]
        return child

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    def summary(self) -> Dict[str, int]:
        return {vma.name: vma.size_bytes for vma in self._vmas}
