"""Address spaces and memory accounting.

The simulation does not store page contents; it tracks the *structure* of
an address space — the list of mapped regions (VMAs) and their page
counts — because that structure is what the paper's fork measurements
hinge on: an iOS process whose dyld mapped 90 MB across 115 libraries pays
for duplicating every page-table entry on fork (~1 ms of the 3.75 ms
fork+exit time, §6.2), while regions backed by the dyld shared cache are a
shared submap on XNU and are not copied per-process.

Resource accounting: when the machine carries a
:class:`~repro.sim.resources.ResourceEnvelope`, every :meth:`map` /
:meth:`fork_copy` charges the machine-wide RAM budget (shared-cache
regions are charged once, refcounted) and every :meth:`unmap` /
:meth:`unmap_all` releases it — this is what lets jetsam and the
lowmemorykiller observe real scarcity.  Per-process ``RLIMIT_AS`` is
enforced here too.  Both checks cost one ``is None`` test when off and
never charge virtual time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .errno import ENOMEM, SyscallError

if TYPE_CHECKING:
    from ..hw.machine import Machine
    from ..sim.resources import ResourceEnvelope

PAGE_SIZE = 4096


class VMA:
    """One mapped virtual memory region."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        writable: bool = False,
        shared_cache: bool = False,
    ) -> None:
        if size_bytes < 0:
            raise ValueError("negative mapping size")
        self.name = name
        self.size_bytes = size_bytes
        self.writable = writable
        #: Backed by the dyld shared cache: lives in a kernel-shared
        #: submap, so fork does not duplicate its page tables.
        self.shared_cache = shared_cache
        #: Resource-envelope bookkeeping: True when these bytes were
        #: charged to the machine RAM budget; for shared-cache regions the
        #: refcounted reservation key instead.
        self.charged = False
        self.shared_key: Optional[str] = None

    @property
    def pages(self) -> int:
        return (self.size_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    def __repr__(self) -> str:
        tag = " shared-cache" if self.shared_cache else ""
        return f"<VMA {self.name!r} {self.size_bytes >> 10}KB{tag}>"


class AddressSpace:
    """The set of VMAs belonging to one process.

    ``machine`` is optional (tests build bare address spaces); when
    present, :meth:`map` is an ``mm.map`` / ``mm.reserve`` fault-injection
    point so seeded plans can simulate transient allocation failure and
    forced scarcity verdicts (ENOMEM), and the machine's resource
    envelope — when installed — is charged for every mapping.
    """

    def __init__(self, machine: Optional["Machine"] = None) -> None:
        self._vmas: List[VMA] = []
        self._machine = machine
        #: RLIMIT_AS soft limit in bytes (None = unlimited); kept in sync
        #: by the setrlimit trap.
        self.as_limit_bytes: Optional[int] = None

    def _envelope(self) -> Optional["ResourceEnvelope"]:
        machine = self._machine
        return machine.resources if machine is not None else None

    def map(
        self,
        name: str,
        size_bytes: int,
        writable: bool = False,
        shared_cache: bool = False,
    ) -> VMA:
        machine = self._machine
        if machine is not None and machine.faults is not None:
            outcome = machine.faults.check(
                "mm.map", region=name, size_bytes=size_bytes
            )
            if outcome is not None:
                if outcome.kind == "delay":
                    machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        f"fault injected: map {name!r}",
                    )
                else:
                    raise SyscallError(
                        ENOMEM, f"fault injected: map {name!r}"
                    )
            # Forced scarcity verdict: behaves exactly like an exhausted
            # RAM budget, without needing a full envelope.
            outcome = machine.faults.check(
                "mm.reserve", region=name, size_bytes=size_bytes
            )
            if outcome is not None:
                if outcome.kind == "delay":
                    machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        f"fault injected: reserve {name!r}",
                    )
                else:
                    raise SyscallError(
                        ENOMEM, f"fault injected: reserve {name!r}"
                    )
        if (
            self.as_limit_bytes is not None
            and self.total_bytes + size_bytes > self.as_limit_bytes
        ):
            raise SyscallError(
                ENOMEM, f"RLIMIT_AS: map {name!r} ({size_bytes} bytes)"
            )
        vma = VMA(name, size_bytes, writable, shared_cache)
        res = self._envelope()
        if res is not None:
            self._reserve(res, vma)
        self._vmas.append(vma)
        return vma

    @staticmethod
    def _reserve(res: "ResourceEnvelope", vma: VMA) -> None:
        """Charge one VMA to the envelope, or raise ENOMEM."""
        if vma.shared_cache:
            if not res.reserve_shared(vma.name, vma.size_bytes):
                raise SyscallError(
                    ENOMEM, f"out of memory: map {vma.name!r}"
                )
            vma.shared_key = vma.name
        else:
            if not res.reserve_ram(vma.size_bytes, owner=vma.name):
                raise SyscallError(
                    ENOMEM, f"out of memory: map {vma.name!r}"
                )
            vma.charged = True

    @staticmethod
    def _release(res: "ResourceEnvelope", vma: VMA) -> None:
        if vma.shared_key is not None:
            res.release_shared(vma.shared_key)
            vma.shared_key = None
        elif vma.charged:
            res.release_ram(vma.size_bytes)
            vma.charged = False

    def unmap(self, vma: VMA) -> None:
        self._vmas.remove(vma)
        res = self._envelope()
        if res is not None:
            self._release(res, vma)

    def unmap_all(self) -> None:
        """exec() tears down the old image."""
        res = self._envelope()
        if res is not None:
            for vma in self._vmas:
                self._release(res, vma)
        self._vmas.clear()

    def find(self, name: str) -> Optional[VMA]:
        for vma in self._vmas:
            if vma.name == name:
                return vma
        return None

    @property
    def total_bytes(self) -> int:
        return sum(vma.size_bytes for vma in self._vmas)

    @property
    def total_pages(self) -> int:
        return sum(vma.pages for vma in self._vmas)

    @property
    def copied_on_fork_pages(self) -> int:
        """Pages whose PTEs fork must duplicate (shared cache excluded)."""
        return sum(vma.pages for vma in self._vmas if not vma.shared_cache)

    def fork_copy(self) -> "AddressSpace":
        """Duplicate the structure (the copy cost is charged by fork).

        With a resource envelope installed the child's private regions
        charge the RAM budget (this is why 32 iOS personas cost ~2.9 GB in
        the paper's accounting) and shared-cache regions only bump the
        submap refcount; an exhausted budget makes fork fail with ENOMEM,
        leaving the envelope balanced."""
        child = AddressSpace(self._machine)
        child.as_limit_bytes = self.as_limit_bytes
        res = self._envelope()
        copied: List[VMA] = []
        for v in self._vmas:
            nv = VMA(v.name, v.size_bytes, v.writable, v.shared_cache)
            if res is not None:
                try:
                    self._reserve(res, nv)
                except SyscallError:
                    for done in copied:
                        self._release(res, done)
                    raise SyscallError(
                        ENOMEM, "out of memory: fork address space"
                    ) from None
            copied.append(nv)
        child._vmas = copied
        return child

    def __iter__(self) -> Iterator[VMA]:
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    def summary(self) -> Dict[str, int]:
        return {vma.name: vma.size_bytes for vma in self._vmas}
