"""The kernel object: trap path, boot, signals, and subsystem wiring.

One :class:`Kernel` is booted per :class:`~repro.hw.machine.Machine`.  The
core is personality-agnostic (paper takeaway: the ABI *is* the interface):

* A **vanilla Android** kernel registers only the Linux ABI/persona and
  the ELF loader.
* A **Cider** kernel additionally registers the iOS persona (XNU ABI +
  iOS TLS layout), the Mach-O loader, duct-taped subsystems (Mach IPC,
  psynch, I/O Kit), the signal translator, and the ``set_persona``
  syscall — and pays ``cider_persona_check`` on every syscall entry.
* The **XNU-native** kernel (the iPad mini configuration) registers only
  the iOS persona with untranslated XNU tables and the device's quirks.

That wiring lives in :mod:`repro.cider.system`; this module provides the
mechanisms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..persona import Persona, PersonaRegistry, UnknownPersonaError
from ..sim import WaitQueue
from .devices import DeviceManager, EvdevDriver, FramebufferDriver, NullDriver, ZeroDriver
from .errno import EINVAL, ENOSYS, SyscallError
from .files import (
    DeviceHandle,
    DirectoryHandle,
    O_CREAT,
    O_EXCL,
    RegularHandle,
)
from .loader import BinfmtHandler, LoaderChain, StartRoutine
from .process import KThread, Process, ProcessExited, ProcessManager, UserContext
from .signals import (
    SIG_DFL,
    SIG_IGN,
    SIGKILL,
    SigAction,
    SigInfo,
    default_is_fatal,
    default_is_ignored,
)
from .vfs import VFS, DeviceNode, Directory, RegularFile

if TYPE_CHECKING:
    from ..binfmt import BinaryImage
    from ..hw.machine import Machine


class Kernel:
    """A booted kernel on a machine."""

    def __init__(self, machine: "Machine", name: str = "linux") -> None:
        self.machine = machine
        machine.kernel = self  # type: ignore[attr-defined]
        self.name = name
        self.vfs = VFS(machine)
        self.devices = DeviceManager(machine)
        self.processes = ProcessManager(self)
        self.personas = PersonaRegistry()
        self.loaders = LoaderChain()
        #: True on Cider kernels: persona checking runs on every syscall
        #: entry (the +8.5% null-syscall overhead, paper §6.2).
        self.cider_enabled = False
        #: Duct-taped subsystems attach themselves here.
        self.mach_subsystem: Optional[object] = None
        self.psynch_subsystem: Optional[object] = None
        self.iokit: Optional[object] = None
        #: Installed by repro.compat.signals on Cider/XNU kernels.
        self.signal_translator: Optional[object] = None
        self.booted = False

    # -- boot -----------------------------------------------------------------

    def boot(self) -> "Kernel":
        """Mount the root filesystem and register core devices."""
        vfs = self.vfs
        for path in ("/dev", "/dev/input", "/tmp", "/proc", "/data"):
            vfs.makedirs(path)
        self.add_device("zero", ZeroDriver(), "mem")
        self.add_device("null", NullDriver(), "mem")
        fb = FramebufferDriver(self.machine)
        self.add_device("graphics/fb0", fb, "graphics")

        touch_evdev = EvdevDriver(self.machine)
        self.machine.touchscreen.attach_driver(touch_evdev.push_event)
        self.add_device("input/event0", touch_evdev, "input")

        accel_evdev = EvdevDriver(self.machine)
        self.machine.accelerometer.attach_driver(accel_evdev.push_event)
        self.add_device("input/event1", accel_evdev, "input")

        self.booted = True
        return self

    def add_device(self, name: str, driver: object, dev_class: str = "misc"):
        """Linux ``device_add``: register + /dev node + Cider hooks."""
        parts = name.split("/")
        if len(parts) > 1:
            self.vfs.makedirs("/dev/" + "/".join(parts[:-1]))
        node = self.vfs.add_device(f"/dev/{name}", driver)
        device = self.devices.device_add(name, driver, dev_class)
        return device

    def register_persona(self, persona: Persona, default: bool = False) -> Persona:
        return self.personas.register(persona, default)

    def register_loader(self, handler: BinfmtHandler) -> None:
        self.loaders.register(handler)

    # -- the trap path -------------------------------------------------------------

    def trap(self, thread: KThread, trapno: int, args: tuple) -> object:
        """Syscall entry: the hot path every simulated syscall takes."""
        machine = self.machine
        machine.charge("syscall_entry")
        if self.cider_enabled:
            # Extra persona checking and handling code on every entry.
            machine.charge("cider_persona_check")
        abi = thread.persona.abi
        machine.trace.emit(machine.clock.now_ns, "syscall", abi.name, nr=trapno)
        try:
            value = abi.dispatch(self, thread, trapno, args)
            result = abi.success(value)
        except SyscallError as error:
            result = abi.failure(error.errno)
        machine.charge("syscall_exit")
        self.deliver_pending_signals(thread)
        self._check_dying(thread)
        return result

    def _check_dying(self, thread: KThread) -> None:
        process = thread.process
        if process.dying is not None:
            raise ProcessExited(128 + process.dying)
        if not process.alive:
            raise ProcessExited(process.exit_code or 0)

    # -- blocking with signal/death checks ----------------------------------------

    def wait_interruptible(self, waitq: WaitQueue) -> None:
        """Block on ``waitq``; on wake, deliver signals / honour death."""
        self.machine.scheduler.block_on(waitq)
        thread = self.current_kthread_or_none()
        if thread is not None:
            self.check_interrupted(thread)

    def check_interrupted(self, thread: KThread) -> None:
        self.deliver_pending_signals(thread)
        self._check_dying(thread)

    def current_kthread_or_none(self) -> Optional[KThread]:
        scheduler = self.machine.scheduler
        if not scheduler.in_sim_thread():
            return None
        return getattr(scheduler.current_thread(), "kthread", None)

    # -- persona switching ------------------------------------------------------------

    def do_set_persona(self, thread: KThread, persona_name: str) -> int:
        """The set_persona syscall body (available from all personas)."""
        if not self.cider_enabled:
            raise SyscallError(ENOSYS, "set_persona on non-Cider kernel")
        try:
            persona = self.personas.get(persona_name)
        except UnknownPersonaError:
            raise SyscallError(EINVAL, persona_name) from None
        self.machine.charge("set_persona")
        previous = thread.persona
        thread.persona = persona
        thread.tls(persona)  # materialise the TLS area pointer swap
        self.machine.emit(
            "persona", "switch", frm=previous.name, to=persona.name
        )
        return 0

    # -- signals -----------------------------------------------------------------------

    def send_signal_to_process(
        self, process: Process, signum: int, sender_pid: int = 0
    ) -> None:
        """Generate a (Linux-numbered) signal for ``process``."""
        if not process.alive:
            return
        if self.cider_enabled:
            # Determining the persona of the target thread (paper: +3%
            # on the signal benchmark even for Linux binaries).
            self.machine.charge("signal_persona_lookup")
        action = process.signals.action_for(signum)
        handler = action.handler
        if signum == SIGKILL:
            handler = SIG_DFL
        if handler == SIG_IGN:
            return
        if handler == SIG_DFL:
            if default_is_ignored(signum):
                return
            if default_is_fatal(signum):
                self._fatal_signal(process, signum)
            return
        info = SigInfo(signum, sender_pid)
        target = process.main_thread()
        current = self.current_kthread_or_none()
        if current is target:
            self._deliver_one(target, info, action)
        else:
            target.pending.push(info)
            if target.sim_thread is not None:
                # Kick the target out of interruptible sleeps.
                sim = target.sim_thread
                if sim.wait_channel is not None:
                    sim.wait_channel._discard(sim)
                self.machine.scheduler._make_ready(sim)

    def _fatal_signal(self, process: Process, signum: int) -> None:
        current = self.current_kthread_or_none()
        if current is not None and current.process is process:
            process.dying = signum
            self.processes.do_exit(current, 128 + signum)
        else:
            process.dying = signum
            self.processes.finalize_process(process, 128 + signum)

    def deliver_pending_signals(self, thread: KThread) -> None:
        while thread.pending:
            info = thread.pending.pop()
            action = thread.process.signals.action_for(info.signum)
            if callable(action.handler):
                self._deliver_one(thread, info, action)

    def _deliver_one(
        self, thread: KThread, info: SigInfo, action: SigAction
    ) -> None:
        """Push a signal frame and run the user handler."""
        machine = self.machine
        machine.charge("signal_deliver")
        signum_user = info.signum
        if self.signal_translator is not None:
            signum_user = self.signal_translator.prepare_delivery(
                self, thread, info
            )
        machine.emit(
            "signal", "deliver", signum=info.signum, persona=thread.persona.name
        )
        ctx = UserContext(self, thread)
        action.handler(ctx, signum_user, info)

    # -- file opening ------------------------------------------------------------------

    def open_path(self, process: Process, path: str, flags: int = 0) -> int:
        """open(2) body shared by every ABI."""
        machine = self.machine
        machine.charge("open_base")
        vfs = self.vfs
        try:
            node = vfs.resolve(path, process.cwd)
            if flags & O_CREAT and flags & O_EXCL:
                from .errno import EEXIST

                raise SyscallError(EEXIST, f"O_EXCL: {path} exists")
        except SyscallError as error:
            if not flags & O_CREAT:
                raise
            node = vfs.create_file(path, cwd=process.cwd)
        if isinstance(node, Directory):
            handle = DirectoryHandle(machine, node)
        elif isinstance(node, DeviceNode):
            handle = DeviceHandle(machine, node.driver, flags)
        elif isinstance(node, RegularFile):
            handle = RegularHandle(machine, node, flags)
        else:
            raise SyscallError(EINVAL, f"unopenable node {node.kind}")
        return process.fd_table.install(handle)

    # -- exec ---------------------------------------------------------------------------

    def exec_image(
        self,
        process: Process,
        thread: KThread,
        file: RegularFile,
        argv: List[str],
    ) -> StartRoutine:
        """Probe binfmt handlers and load the image."""
        image = file.binary_image
        if image is None:
            raise SyscallError(ENOSYS, "not a binary")
        handler = self.loaders.find(image)
        for seg_handler in ():  # placeholder for future LSM-style hooks
            pass
        return handler.load(self, process, thread, image, argv)

    # -- convenience -------------------------------------------------------------------

    def start_process(
        self,
        path: str,
        argv: Optional[List[str]] = None,
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> Process:
        return self.processes.start_process(path, argv, name, daemon=daemon)

    def spawn_kernel_daemon(
        self, body: Callable[[], object], name: str
    ) -> object:
        """A kernel-level service thread (no process context)."""
        return self.machine.spawn(body, name=f"k:{name}", daemon=True)

    def run(self) -> None:
        self.machine.run()

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r} cider={self.cider_enabled}>"
