"""The kernel object: trap path, boot, signals, and subsystem wiring.

One :class:`Kernel` is booted per :class:`~repro.hw.machine.Machine`.  The
core is personality-agnostic (paper takeaway: the ABI *is* the interface):

* A **vanilla Android** kernel registers only the Linux ABI/persona and
  the ELF loader.
* A **Cider** kernel additionally registers the iOS persona (XNU ABI +
  iOS TLS layout), the Mach-O loader, duct-taped subsystems (Mach IPC,
  psynch, I/O Kit), the signal translator, and the ``set_persona``
  syscall — and pays ``cider_persona_check`` on every syscall entry.
* The **XNU-native** kernel (the iPad mini configuration) registers only
  the iOS persona with untranslated XNU tables and the device's quirks.

That wiring lives in :mod:`repro.cider.system`; this module provides the
mechanisms.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..persona import Persona, PersonaRegistry, UnknownPersonaError
from ..sim import WaitQueue
from ..sim.errors import MachinePanic
from ..sim.faults import KIND_DELAY, KIND_ERRNO, KIND_SIGNAL, FaultOutcome
from ..sim.trace import CRASH_CATEGORY
from .crash import CrashReport
from .devices import DeviceManager, EvdevDriver, FramebufferDriver, NullDriver, ZeroDriver
from .errno import EINVAL, EIO, ENOSYS, SyscallError
from .files import (
    DeviceHandle,
    DirectoryHandle,
    O_CREAT,
    O_EXCL,
    RegularHandle,
    fd_alloc,
)
from .loader import BinfmtHandler, LoaderChain, StartRoutine
from .process import KThread, Process, ProcessExited, ProcessManager, UserContext
from .signals import (
    SIG_DFL,
    SIG_IGN,
    SIGKILL,
    SIGSEGV,
    SIGSYS,
    SigAction,
    SigInfo,
    default_is_fatal,
    default_is_ignored,
)
from .vfs import VFS, DeviceNode, Directory, RegularFile

if TYPE_CHECKING:
    from ..binfmt import BinaryImage
    from ..hw.machine import Machine


class Kernel:
    """A booted kernel on a machine."""

    def __init__(self, machine: "Machine", name: str = "linux") -> None:
        self.machine = machine
        machine.kernel = self  # type: ignore[attr-defined]
        self.name = name
        self.vfs = VFS(machine)
        self.devices = DeviceManager(machine)
        self.processes = ProcessManager(self)
        self.personas = PersonaRegistry()
        self.loaders = LoaderChain()
        #: True on Cider kernels: persona checking runs on every syscall
        #: entry (the +8.5% null-syscall overhead, paper §6.2).
        self.cider_enabled = False
        #: Duct-taped subsystems attach themselves here.
        self.mach_subsystem: Optional[object] = None
        self.psynch_subsystem: Optional[object] = None
        self.iokit: Optional[object] = None
        #: Installed by repro.compat.signals on Cider/XNU kernels.
        self.signal_translator: Optional[object] = None
        #: The user-space dyld instance on Cider/XNU kernels; the
        #: shared-cache pressure evictor invalidates launch closures
        #: through this handle.
        self.dyld: Optional[object] = None
        #: Tombstones written by crash containment (see :mod:`.crash`).
        self.crash_reports: List[CrashReport] = []
        #: Extra launchd keep-alive jobs (binary path -> bootstrap name)
        #: merged with :data:`repro.ios.services.KEEP_ALIVE_SERVICES` at
        #: launchd boot.  System builders (e.g. the in-sim HTTP origin,
        #: :mod:`repro.net.http`) add entries *before* init runs so the
        #: daemon is spawned and supervised like configd/notifyd.
        self.launchd_extra_services: Dict[str, str] = {}
        #: pid -> callback(level): processes that asked to hear about
        #: memory pressure *before* the kill daemons pick victims (UIKit
        #: registers ``didReceiveMemoryWarning`` delivery here).  Entries
        #: are dropped automatically when their process is finalized.
        self.memory_pressure_listeners: Dict[int, Callable[[str], None]] = {}
        #: Kernel-side cache evictors run by jetsam between the warning
        #: phase and the kill phase (dyld registers shared-cache
        #: eviction).  Each returns the number of bytes it released.
        self.pressure_evictors: List[Callable[[], int]] = []
        #: When True, abnormal process death (escaped SyscallError, Python
        #: oops, fatal signal, watchdog kill) is *contained*: the process
        #: is torn down with a tombstone and the rest of the machine keeps
        #: running.  Default False preserves the historical fail-fast
        #: behaviour that unit tests rely on (``run_program`` raises).
        self.contain_crashes = False
        #: Copy-on-write fork ablation (off by default — the paper's §6.2
        #: fork numbers were measured with eager PTE duplication): fork
        #: charges ``cow_fork_per_page`` instead of ``fork_per_page`` and
        #: each side pays per *touched* page on first write (mm.touch).
        self.cow_fork = False
        # Hot-path engine: the trap path's fixed costs resolved to integer
        # picoseconds once at boot (each component rounded individually,
        # so summed entry+persona-check advances the clock bit-identically
        # to the two historical ``charge`` calls).  ``cider_enabled`` flips
        # after construction (enable_cider), hence both entry variants.
        self._entry_plain_ps = machine.cost_ps("syscall_entry")
        self._entry_cider_ps = self._entry_plain_ps + machine.cost_ps(
            "cider_persona_check"
        )
        self._exit_ps = machine.cost_ps("syscall_exit")
        self._sig_persona_ps = machine.cost_ps("signal_persona_lookup")
        self.booted = False

    # -- boot -----------------------------------------------------------------

    def boot(self) -> "Kernel":
        """Mount the root filesystem and register core devices."""
        vfs = self.vfs
        for path in ("/dev", "/dev/input", "/tmp", "/proc", "/data"):
            vfs.makedirs(path)
        self.add_device("zero", ZeroDriver(), "mem")
        self.add_device("null", NullDriver(), "mem")
        fb = FramebufferDriver(self.machine)
        self.add_device("graphics/fb0", fb, "graphics")

        touch_evdev = EvdevDriver(self.machine)
        self.machine.touchscreen.attach_driver(touch_evdev.push_event)
        self.add_device("input/event0", touch_evdev, "input")

        accel_evdev = EvdevDriver(self.machine)
        self.machine.accelerometer.attach_driver(accel_evdev.push_event)
        self.add_device("input/event1", accel_evdev, "input")

        # Watchdog kills land here so the victim's process is tombstoned
        # and torn down rather than leaking half a process.
        self.machine.scheduler.on_watchdog_kill = self._watchdog_victim

        self.booted = True
        return self

    def add_device(self, name: str, driver: object, dev_class: str = "misc"):
        """Linux ``device_add``: register + /dev node + Cider hooks."""
        parts = name.split("/")
        if len(parts) > 1:
            self.vfs.makedirs("/dev/" + "/".join(parts[:-1]))
        node = self.vfs.add_device(f"/dev/{name}", driver)
        device = self.devices.device_add(name, driver, dev_class)
        return device

    def register_persona(self, persona: Persona, default: bool = False) -> Persona:
        self._prime_persona(persona)
        return self.personas.register(persona, default)

    def _prime_persona(self, persona: Persona) -> dict:
        """Flatten the persona's dispatch route into precomputed state.

        Collapses the ABI's dispatch tables into one ``{trapno: handler}``
        dict (trap numbers are disjoint across tables), resolves the ABI's
        per-dispatch cost to integer picoseconds, and caches the trace
        counter key — so the trap fast path does one dict probe instead of
        a virtual dispatch + per-call dict build + string cost lookups.
        Table mutations after priming (Cider registers ``set_persona``
        into every table *post* registration) invalidate the flat cache
        via :meth:`DispatchTable.subscribe`; the next trap re-primes.
        """
        abi = persona.abi
        flat = {}
        for table in abi.tables():
            for number, handler in table.items():
                flat[number] = handler
        if not persona._subscribed:
            def _invalidate(p=persona):
                p._flat = None

            for table in abi.tables():
                table.subscribe(_invalidate)
            persona._subscribed = True
        cost_name = abi.dispatch_cost_name
        persona._dispatch_ps = (
            self.machine.cost_ps(cost_name) if cost_name else 0
        )
        persona._trace_key = ("syscall", abi.name)
        persona._flat = flat
        return flat

    def register_loader(self, handler: BinfmtHandler) -> None:
        self.loaders.register(handler)

    # -- the trap path -------------------------------------------------------------

    def trap(self, thread: KThread, trapno: int, args: tuple) -> object:
        """Syscall entry: the hot path every simulated syscall takes.

        Hardened: unknown traps surface ENOSYS (via the dispatch table);
        non-:class:`SyscallError` Python exceptions from a handler are a
        *kernel oops* — the offending process receives a fatal SIGSYS and
        the traceback is preserved in the trace — they never escape as raw
        Python errors.  Control-flow exceptions (thread/process exit,
        kills) derive from BaseException and pass through untouched, as
        does :class:`~repro.ducttape.KernelPanic` (a kernel bug is not a
        process crash).

        Observability: with an observatory installed the whole trap is a
        ``kernel.trap`` span under which persona switches, diplomats,
        VFS lookups, Mach IPC and dyld open child spans; the span is
        closed in a ``finally`` so aborted syscalls (injected faults,
        process death, kernel oopses) can never leak it open.
        """
        obs = self.machine.obs
        if obs is None:
            return self._trap_body(thread, trapno, args)
        span = obs.enter_span(
            "kernel.trap", thread.persona.abi.name, {"nr": trapno}
        )
        try:
            return self._trap_body(thread, trapno, args)
        finally:
            obs.exit_span(span)

    def _trap_body(self, thread: KThread, trapno: int, args: tuple) -> object:
        machine = self.machine
        if machine.crashed:
            # The machine is down: there is no kernel to trap into.  Every
            # still-running simulated thread unwinds here; recovery is
            # System.reboot().
            raise MachinePanic(machine.panic_reason or "machine has crashed")
        clock = machine.clock
        # Entry (+ the extra persona checking and handling code Cider runs
        # on every entry) in one pre-summed, pre-rounded charge.
        clock.charge_ps(
            self._entry_cider_ps if self.cider_enabled else self._entry_plain_ps
        )
        persona = thread.persona
        abi = persona.abi
        trace = machine.trace
        if trace.enabled:
            trace.emit(clock.now_ns, "syscall", abi.name, nr=trapno)
        else:
            # Counter-only bump with the persona's cached key tuple: the
            # disabled fast path allocates nothing.
            trace.bump(persona._trace_key)
        if machine.faults is not None:
            outcome = machine.faults.check(
                "syscall.enter", nr=trapno, abi=abi.name, pid=thread.process.pid
            )
            injected = self.apply_fault_errno(thread.process, outcome)
            if injected is not None:
                result = abi.failure(injected)
                clock.charge_ps(self._exit_ps)
                self.deliver_pending_signals(thread)
                self._check_dying(thread)
                return result
        try:
            flat = persona._flat
            if flat is None:
                flat = self._prime_persona(persona)
            handler = flat.get(trapno)
            if handler is not None:
                dispatch_ps = persona._dispatch_ps
                if dispatch_ps:
                    clock.charge_ps(dispatch_ps)
                value = handler(self, thread, *args)
            else:
                # Unknown number or bespoke ABI: the ABI's own dispatch
                # charges its cost and raises the table-specific ENOSYS.
                value = abi.dispatch(self, thread, trapno, args)
            result = abi.success(value)
        except SyscallError as error:
            result = abi.failure(error.errno)
        except Exception as error:  # noqa: BLE001 -- oops containment
            result = self._trap_oops(thread, abi, trapno, error)
        if machine.faults is not None:
            outcome = machine.faults.check(
                "syscall.exit", nr=trapno, abi=abi.name, pid=thread.process.pid
            )
            injected = self.apply_fault_errno(thread.process, outcome)
            if injected is not None:
                result = abi.failure(injected)
        clock.charge_ps(self._exit_ps)
        self.deliver_pending_signals(thread)
        self._check_dying(thread)
        return result

    def apply_fault_errno(
        self, process: Process, outcome: Optional[FaultOutcome]
    ) -> Optional[int]:
        """Interpret a :class:`FaultOutcome` at an errno-style injection
        point.  Returns an errno to surface, or None to continue normally
        (delays charge virtual time; signals are posted asynchronously;
        Mach kern codes degrade to EIO outside the Mach layer)."""
        if outcome is None:
            return None
        if outcome.kind == KIND_ERRNO:
            return int(outcome.value)  # type: ignore[call-overload]
        if outcome.kind == KIND_DELAY:
            self.machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
            return None
        if outcome.kind == KIND_SIGNAL:
            self.send_signal_to_process(process, int(outcome.value))  # type: ignore[call-overload]
            return None
        return EIO

    def _trap_oops(
        self, thread: KThread, abi: object, trapno: int, error: Exception
    ) -> object:
        """A syscall handler raised a non-SyscallError Python exception.

        This is a simulated-kernel bug from the process's point of view:
        tombstone the process with SIGSYS (traceback preserved), never let
        the raw exception climb out of the trap.  KernelPanic is exempt —
        it means the *machine* is toast and must propagate.
        """
        from ..ducttape.adapters import KernelPanic

        if isinstance(error, KernelPanic):
            raise error
        import traceback as _traceback

        tb = _traceback.format_exc()
        process = thread.process
        self.report_crash(
            process,
            SIGSYS,
            f"kernel oops in syscall {trapno}: {type(error).__name__}: {error}",
            syscall=str(trapno),
            traceback=tb,
        )
        self._fatal_signal(process, SIGSYS)
        # Only reached when the oops hit a *different* process's syscall
        # context (never in practice) — surface ENOSYS defensively.
        return abi.failure(ENOSYS)  # type: ignore[attr-defined]

    # -- crash containment -------------------------------------------------------

    def report_crash(
        self,
        process: Process,
        signum: int,
        reason: str,
        syscall: Optional[str] = None,
        traceback: Optional[str] = None,
        **detail: object,
    ) -> CrashReport:
        """Write a tombstone and emit one ``crash`` trace event."""
        try:
            persona = process.main_thread().persona.name
        except Exception:  # pragma: no cover - threadless corpse
            persona = "?"
        report = CrashReport(
            timestamp_ns=self.machine.now_ns,
            pid=process.pid,
            name=process.name,
            persona=persona,
            signum=signum,
            reason=reason,
            syscall=syscall,
            traceback=traceback,
            detail=dict(detail),
        )
        self.crash_reports.append(report)
        self.machine.trace.emit(
            self.machine.now_ns,
            CRASH_CATEGORY,
            "tombstone",
            pid=process.pid,
            comm=process.name,
            signum=signum,
            reason=reason,
            **detail,
        )
        return report

    def report_machine_panic(
        self, reason: str, power_loss: bool = False
    ) -> CrashReport:
        """The kernel tombstone for a whole-machine crash (pid 0).

        Written by :meth:`repro.hw.machine.Machine.panic` before the
        MachinePanic unwind begins, so the tombstone timestamps the exact
        virtual instant the machine died.
        """
        detail: Dict[str, object] = {"power_loss": power_loss}
        # Flush the flight recorder into the tombstone — and, when a WAL
        # device is present, into its pstore region, which survives even
        # the power cut that just destroyed the volatile journal tail.
        recorder = self.machine.flightrec
        if recorder is not None:
            tail = recorder.flush(reason)
            detail["flightrec_events"] = len(tail)
            journal = self.machine.storage.journal
            if journal is not None:
                journal.pstore = list(tail)
        report = CrashReport(
            timestamp_ns=self.machine.now_ns,
            pid=0,
            name="kernel",
            persona=self.name,
            signum=0,
            reason=reason,
            detail=detail,
        )
        self.crash_reports.append(report)
        self.machine.trace.emit(
            self.machine.now_ns,
            CRASH_CATEGORY,
            "panic",
            pid=0,
            comm="kernel",
            reason=reason,
            power_loss=power_loss,
        )
        return report

    def _watchdog_victim(self, sim_thread: object) -> None:
        """Scheduler watchdog decided to kill ``sim_thread``: tombstone and
        tear down the owning process (ANR-style)."""
        kthread = getattr(sim_thread, "kthread", None)
        if kthread is None:
            return
        process = kthread.process
        if not process.alive:
            return
        self.report_crash(
            process,
            SIGKILL,
            "watchdog: thread blocked past ANR budget",
            blocked_on=repr(getattr(sim_thread, "wait_channel", None)),
        )
        process.dying = SIGKILL
        self.processes.finalize_process(process, 128 + SIGKILL)

    def _check_dying(self, thread: KThread) -> None:
        process = thread.process
        if process.dying is not None:
            raise ProcessExited(128 + process.dying)
        if not process.alive:
            raise ProcessExited(process.exit_code or 0)

    # -- blocking with signal/death checks ----------------------------------------

    def wait_interruptible(self, waitq: WaitQueue) -> None:
        """Block on ``waitq``; on wake, deliver signals / honour death."""
        self.machine.scheduler.block_on(waitq)
        thread = self.current_kthread_or_none()
        if thread is not None:
            self.check_interrupted(thread)

    def check_interrupted(self, thread: KThread) -> None:
        self.deliver_pending_signals(thread)
        self._check_dying(thread)

    def current_kthread_or_none(self) -> Optional[KThread]:
        scheduler = self.machine.scheduler
        if not scheduler.in_sim_thread():
            return None
        return getattr(scheduler.current_thread(), "kthread", None)

    # -- persona switching ------------------------------------------------------------

    def do_set_persona(self, thread: KThread, persona_name: str) -> int:
        """The set_persona syscall body (available from all personas)."""
        if not self.cider_enabled:
            raise SyscallError(ENOSYS, "set_persona on non-Cider kernel")
        try:
            persona = self.personas.get(persona_name)
        except UnknownPersonaError:
            raise SyscallError(EINVAL, persona_name) from None
        previous = thread.persona
        with self.machine.span(
            "persona.switch", f"{previous.name}->{persona.name}"
        ):
            self.machine.charge("set_persona")
            thread.persona = persona
            thread.tls(persona)  # materialise the TLS area pointer swap
        self.machine.emit(
            "persona", "switch", frm=previous.name, to=persona.name
        )
        return 0

    # -- signals -----------------------------------------------------------------------

    def send_signal_to_process(
        self, process: Process, signum: int, sender_pid: int = 0
    ) -> None:
        """Generate a (Linux-numbered) signal for ``process``."""
        if not process.alive:
            return
        if self.cider_enabled:
            # Determining the persona of the target thread (paper: +3%
            # on the signal benchmark even for Linux binaries) — cost
            # pre-resolved to integer picoseconds at boot.
            self.machine.clock.charge_ps(self._sig_persona_ps)
        action = process.signals.action_for(signum)
        handler = action.handler
        if signum == SIGKILL:
            handler = SIG_DFL
        if handler == SIG_IGN:
            return
        if handler == SIG_DFL:
            if default_is_ignored(signum):
                return
            if default_is_fatal(signum):
                self._fatal_signal(process, signum)
            return
        info = SigInfo(signum, sender_pid)
        obs = self.machine.obs
        if obs is not None and obs.causal is not None:
            info.causal = obs.causal.carrier()
        hb = self.machine.hb
        if hb is not None:
            # send→deliver edge, carried on the siginfo itself so even a
            # delivery deferred past the wakeup stays ordered.
            hb.release(info, "signal")
        target = process.main_thread()
        current = self.current_kthread_or_none()
        if current is target:
            self._deliver_one(target, info, action)
        else:
            target.pending.push(info)
            if target.sim_thread is not None:
                # Kick the target out of interruptible sleeps.
                sim = target.sim_thread
                if sim.wait_channel is not None:
                    sim.wait_channel._discard(sim)
                self.machine.scheduler._make_ready(sim)

    def _fatal_signal(self, process: Process, signum: int) -> None:
        current = self.current_kthread_or_none()
        if current is not None and current.process is process:
            process.dying = signum
            self.processes.do_exit(current, 128 + signum)
        else:
            process.dying = signum
            self.processes.finalize_process(process, 128 + signum)

    def deliver_pending_signals(self, thread: KThread) -> None:
        while thread.pending:
            info = thread.pending.pop()
            action = thread.process.signals.action_for(info.signum)
            if callable(action.handler):
                self._deliver_one(thread, info, action)

    def _deliver_one(
        self, thread: KThread, info: SigInfo, action: SigAction
    ) -> None:
        """Push a signal frame and run the user handler."""
        machine = self.machine
        obs = machine.obs
        if obs is None:
            self._deliver_one_body(thread, info, action)
            return
        # Land the sender's causal context first so the deliver span (and
        # everything the handler does) parents under the sending trace.
        if obs.causal is not None and info.causal is not None:
            obs.causal.adopt(info.causal)
        span = obs.enter_span(
            "kernel.signal.deliver", str(info.signum), None
        )
        try:
            self._deliver_one_body(thread, info, action)
        finally:
            obs.exit_span(span)

    def _deliver_one_body(
        self, thread: KThread, info: SigInfo, action: SigAction
    ) -> None:
        machine = self.machine
        machine.charge("signal_deliver")
        if machine.hb is not None:
            machine.hb.acquire(info)
        signum_user = info.signum
        if self.signal_translator is not None:
            signum_user = self.signal_translator.prepare_delivery(
                self, thread, info
            )
        machine.emit(
            "signal", "deliver", signum=info.signum, persona=thread.persona.name
        )
        ctx = UserContext(self, thread)
        try:
            action.handler(ctx, signum_user, info)
        except SyscallError:
            raise  # handlers may trap; the errno surfaces normally
        except Exception:  # noqa: BLE001 -- a crash *in* the handler
            import traceback as _traceback

            self.report_crash(
                thread.process,
                SIGSEGV,
                f"exception in signal handler for signal {info.signum}",
                traceback=_traceback.format_exc(),
            )
            self._fatal_signal(thread.process, SIGSEGV)

    # -- file opening ------------------------------------------------------------------

    def open_path(self, process: Process, path: str, flags: int = 0) -> int:
        """open(2) body shared by every ABI."""
        machine = self.machine
        machine.charge("open_base")
        if machine.faults is not None:
            outcome = machine.faults.check(
                "vfs.open", path=path, pid=process.pid, flags=flags
            )
            injected = self.apply_fault_errno(process, outcome)
            if injected is not None:
                raise SyscallError(injected, f"fault injected: open {path!r}")
        vfs = self.vfs
        try:
            node = vfs.resolve(path, process.cwd)
            if flags & O_CREAT and flags & O_EXCL:
                from .errno import EEXIST

                raise SyscallError(EEXIST, f"O_EXCL: {path} exists")
        except SyscallError as error:
            if not flags & O_CREAT:
                raise
            node = vfs.create_file(path, cwd=process.cwd)
        if isinstance(node, Directory):
            handle = DirectoryHandle(machine, node)
        elif isinstance(node, DeviceNode):
            handle = DeviceHandle(machine, node.driver, flags)
        elif isinstance(node, RegularFile):
            handle = RegularHandle(machine, node, flags)
        else:
            raise SyscallError(EINVAL, f"unopenable node {node.kind}")
        return fd_alloc(process, handle)

    # -- exec ---------------------------------------------------------------------------

    def exec_image(
        self,
        process: Process,
        thread: KThread,
        file: RegularFile,
        argv: List[str],
    ) -> StartRoutine:
        """Probe binfmt handlers and load the image."""
        image = file.binary_image
        if image is None:
            raise SyscallError(ENOSYS, "not a binary")
        handler = self.loaders.find(image)
        for seg_handler in ():  # placeholder for future LSM-style hooks
            pass
        return handler.load(self, process, thread, image, argv)

    # -- convenience -------------------------------------------------------------------

    def start_process(
        self,
        path: str,
        argv: Optional[List[str]] = None,
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> Process:
        return self.processes.start_process(path, argv, name, daemon=daemon)

    def spawn_kernel_daemon(
        self, body: Callable[[], object], name: str
    ) -> object:
        """A kernel-level service thread (no process context)."""
        return self.machine.spawn(body, name=f"k:{name}", daemon=True)

    def start_pressure_daemons(self) -> tuple:
        """Spawn jetsam + lowmemorykiller (see :mod:`.pressure`).

        Requires an installed resource envelope; both daemons sleep until
        the envelope reports pressure, so the zero-pressure fast path
        never runs them."""
        from .pressure import start_pressure_daemons

        return start_pressure_daemons(self)

    def run(self) -> None:
        self.machine.run()

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r} cider={self.cider_enabled}>"
