"""The virtual filesystem.

An in-memory ramfs with directories, regular files, and device nodes.
Binaries live in the VFS as regular files carrying a parsed
:class:`~repro.binfmt.BinaryImage` (their nominal size is the image's
on-disk size, so dyld's filesystem walk and PassMark's storage tests see
realistic sizes without storing megabytes of bytes).

Path resolution charges ``path_lookup_component`` per component — this is
what makes the Cider prototype's non-prelinked dyld walk expensive
(paper §6.2: "dyld must walk the filesystem to load each library on every
exec").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..binfmt import BinaryImage
from .errno import (
    EEXIST,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    SyscallError,
)

if TYPE_CHECKING:
    from ..hw.machine import Machine


class Inode:
    """Base of all filesystem objects."""

    kind = "inode"

    def __init__(self) -> None:
        self.nlink = 1

    @property
    def size_bytes(self) -> int:
        return 0


class Directory(Inode):
    kind = "dir"

    def __init__(self) -> None:
        super().__init__()
        self.entries: Dict[str, Inode] = {}

    def lookup(self, name: str) -> Optional[Inode]:
        return self.entries.get(name)

    def link(self, name: str, inode: Inode) -> None:
        if name in self.entries:
            raise SyscallError(EEXIST, name)
        self.entries[name] = inode

    def unlink(self, name: str) -> Inode:
        try:
            return self.entries.pop(name)
        except KeyError:
            raise SyscallError(ENOENT, name) from None

    def names(self) -> List[str]:
        return sorted(self.entries)


class RegularFile(Inode):
    kind = "file"

    def __init__(
        self,
        data: bytes = b"",
        binary_image: Optional[BinaryImage] = None,
    ) -> None:
        super().__init__()
        self.data = bytearray(data)
        self.binary_image = binary_image
        #: Bytes this inode holds against the machine's storage budget
        #: (charged by :class:`~repro.kernel.files.RegularHandle` writes,
        #: released on unlink/O_TRUNC).
        self.storage_reserved = 0

    @property
    def size_bytes(self) -> int:
        if self.binary_image is not None:
            return max(len(self.data), self.binary_image.vm_size_bytes)
        return len(self.data)

    @property
    def magic(self) -> bytes:
        if self.binary_image is not None:
            return self.binary_image.magic
        return bytes(self.data[:4])


class DeviceNode(Inode):
    kind = "device"

    def __init__(self, driver: object) -> None:
        super().__init__()
        self.driver = driver


class SocketNode(Inode):
    """A bound AF_UNIX socket name."""

    kind = "socket"

    def __init__(self, listener: object) -> None:
        super().__init__()
        self.listener = listener


class VFS:
    """The mounted filesystem tree plus path resolution."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self.root = Directory()

    # -- path plumbing --------------------------------------------------------

    @staticmethod
    def split(path: str) -> List[str]:
        return [part for part in path.split("/") if part and part != "."]

    def _charge_lookup(self, components: int) -> None:
        self._machine.charge("path_lookup_component", max(1, components))

    def resolve(self, path: str, cwd: Optional[Directory] = None) -> Inode:
        """Resolve ``path`` to an inode, charging per component.

        A ``kernel.vfs.lookup`` profiling span when observability is on —
        which is how dyld's 115-library filesystem walk shows up as VFS
        time nested under ``ios.dyld.walk`` in the flame table."""
        obs = self._machine.obs
        if obs is None:
            return self._resolve_body(path, cwd)
        span = obs.enter_span("kernel.vfs.lookup", path, None)
        try:
            return self._resolve_body(path, cwd)
        finally:
            obs.exit_span(span)

    def _resolve_body(self, path: str, cwd: Optional[Directory]) -> Inode:
        parts = self.split(path)
        self._charge_lookup(len(parts))
        if self._machine.faults is not None:
            outcome = self._machine.faults.check("vfs.lookup", path=path)
            if outcome is not None:
                if outcome.kind == "delay":
                    self._machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
                elif outcome.kind == "errno":
                    raise SyscallError(
                        int(outcome.value),  # type: ignore[call-overload]
                        f"fault injected: lookup {path!r}",
                    )
                else:  # kern/signal degrade to transient EIO here
                    from .errno import EIO

                    raise SyscallError(EIO, f"fault injected: lookup {path!r}")
        node: Inode = self.root if path.startswith("/") or cwd is None else cwd
        for part in parts:
            if not isinstance(node, Directory):
                raise SyscallError(ENOTDIR, path)
            child = node.lookup(part)
            if child is None:
                raise SyscallError(ENOENT, path)
            node = child
        return node

    def resolve_parent(
        self, path: str, cwd: Optional[Directory] = None
    ) -> Tuple[Directory, str]:
        """Resolve all but the last component; return (dir, last_name)."""
        parts = self.split(path)
        if not parts:
            raise SyscallError(ENOENT, path)
        self._charge_lookup(len(parts))
        node: Inode = self.root if path.startswith("/") or cwd is None else cwd
        for part in parts[:-1]:
            if not isinstance(node, Directory):
                raise SyscallError(ENOTDIR, path)
            child = node.lookup(part)
            if child is None:
                raise SyscallError(ENOENT, path)
            node = child
        if not isinstance(node, Directory):
            raise SyscallError(ENOTDIR, path)
        return node, parts[-1]

    def exists(self, path: str, cwd: Optional[Directory] = None) -> bool:
        try:
            self.resolve(path, cwd)
            return True
        except SyscallError:
            return False

    # -- namespace operations ---------------------------------------------------

    def mkdir(self, path: str, cwd: Optional[Directory] = None) -> Directory:
        parent, name = self.resolve_parent(path, cwd)
        directory = Directory()
        parent.link(name, directory)
        return directory

    def makedirs(self, path: str) -> Directory:
        """mkdir -p."""
        node: Inode = self.root
        for part in self.split(path):
            if not isinstance(node, Directory):
                raise SyscallError(ENOTDIR, path)
            child = node.lookup(part)
            if child is None:
                child = Directory()
                node.link(part, child)
            node = child
        if not isinstance(node, Directory):
            raise SyscallError(ENOTDIR, path)
        return node

    def create_file(
        self,
        path: str,
        data: bytes = b"",
        binary_image: Optional[BinaryImage] = None,
        cwd: Optional[Directory] = None,
        exist_ok: bool = False,
    ) -> RegularFile:
        parent, name = self.resolve_parent(path, cwd)
        existing = parent.lookup(name)
        if existing is not None:
            if exist_ok and isinstance(existing, RegularFile):
                return existing
            raise SyscallError(EEXIST, path)
        self._machine.charge("file_create")
        inode = RegularFile(data, binary_image)
        parent.link(name, inode)
        return inode

    def add_device(self, path: str, driver: object) -> DeviceNode:
        parent, name = self.resolve_parent(path, None)
        node = DeviceNode(driver)
        parent.link(name, node)
        return node

    def bind_socket(self, path: str, listener: object) -> SocketNode:
        parent, name = self.resolve_parent(path, None)
        node = SocketNode(listener)
        parent.link(name, node)
        return node

    def unlink(self, path: str, cwd: Optional[Directory] = None) -> None:
        parent, name = self.resolve_parent(path, cwd)
        target = parent.lookup(name)
        if target is None:
            raise SyscallError(ENOENT, path)
        if isinstance(target, Directory):
            raise SyscallError(EISDIR, path)
        self._machine.charge("file_unlink")
        parent.unlink(name)
        reserved = getattr(target, "storage_reserved", 0)
        if reserved:
            res = self._machine.resources
            if res is not None:
                res.release_storage(reserved)
            target.storage_reserved = 0  # type: ignore[attr-defined]

    def rmdir(self, path: str, cwd: Optional[Directory] = None) -> None:
        parent, name = self.resolve_parent(path, cwd)
        target = parent.lookup(name)
        if target is None:
            raise SyscallError(ENOENT, path)
        if not isinstance(target, Directory):
            raise SyscallError(ENOTDIR, path)
        if target.entries:
            raise SyscallError(ENOTEMPTY, path)
        parent.unlink(name)

    def listdir(self, path: str, cwd: Optional[Directory] = None) -> List[str]:
        node = self.resolve(path, cwd)
        if not isinstance(node, Directory):
            raise SyscallError(ENOTDIR, path)
        return node.names()

    def install_binary(self, path: str, image: BinaryImage) -> RegularFile:
        """Place an executable/dylib into the tree, creating directories.
        Installing over an existing path replaces its image (a copy)."""
        parts = self.split(path)
        if len(parts) > 1:
            self.makedirs("/" + "/".join(parts[:-1]))
        node = self.create_file(path, binary_image=image, exist_ok=True)
        node.binary_image = image
        return node

    def walk(self, path: str = "/") -> List[str]:
        """All file paths under ``path`` (for tests and the installer)."""
        result: List[str] = []

        def _walk(node: Inode, prefix: str) -> None:
            if isinstance(node, Directory):
                for name in node.names():
                    _walk(node.entries[name], f"{prefix}/{name}")
            else:
                result.append(prefix or "/")

        start = self.resolve(path)
        _walk(start, "" if path == "/" else path.rstrip("/"))
        return result
