"""The virtual filesystem.

An in-memory ramfs with directories, regular files, and device nodes.
Binaries live in the VFS as regular files carrying a parsed
:class:`~repro.binfmt.BinaryImage` (their nominal size is the image's
on-disk size, so dyld's filesystem walk and PassMark's storage tests see
realistic sizes without storing megabytes of bytes).

Path resolution charges ``path_lookup_component`` per component — this is
what makes the Cider prototype's non-prelinked dyld walk expensive
(paper §6.2: "dyld must walk the filesystem to load each library on every
exec").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..binfmt import BinaryImage
from ..sim.clock import ns_to_ps
from .errno import (
    EEXIST,
    EISDIR,
    ENOENT,
    ENOTDIR,
    ENOTEMPTY,
    SyscallError,
)

if TYPE_CHECKING:
    from ..hw.machine import Machine


class Inode:
    """Base of all filesystem objects.

    The inode tree is among the hottest object populations in the
    simulator (dyld's per-exec 115-library walk touches hundreds of
    dentries), so every class in the hierarchy declares ``__slots__``.
    """

    kind = "inode"

    __slots__ = ("nlink", "ino")

    def __init__(self) -> None:
        self.nlink = 1
        #: Durable identity on the journal device.  0 (the default) means
        #: untracked: part of the boot image the reboot recipe recreates,
        #: not the journal.  Files created while a journal is enabled get
        #: a sequential non-zero ino.
        self.ino = 0

    @property
    def size_bytes(self) -> int:
        return 0


class Directory(Inode):
    kind = "dir"

    __slots__ = ("entries",)

    def __init__(self) -> None:
        super().__init__()
        self.entries: Dict[str, Inode] = {}

    def lookup(self, name: str) -> Optional[Inode]:
        return self.entries.get(name)

    def link(self, name: str, inode: Inode) -> None:
        if name in self.entries:
            raise SyscallError(EEXIST, name)
        self.entries[name] = inode

    def unlink(self, name: str) -> Inode:
        try:
            return self.entries.pop(name)
        except KeyError:
            raise SyscallError(ENOENT, name) from None

    def names(self) -> List[str]:
        return sorted(self.entries)


class RegularFile(Inode):
    kind = "file"

    __slots__ = ("data", "binary_image", "storage_reserved", "shared_cache")

    def __init__(
        self,
        data: bytes = b"",
        binary_image: Optional[BinaryImage] = None,
    ) -> None:
        super().__init__()
        self.data = bytearray(data)
        self.binary_image = binary_image
        #: Bytes this inode holds against the machine's storage budget
        #: (charged by :class:`~repro.kernel.files.RegularHandle` writes,
        #: released on unlink/O_TRUNC).
        self.storage_reserved = 0
        #: The prelinked dyld shared cache carried by the cache file
        #: (set by repro.ios.frameworks.install_shared_cache).
        self.shared_cache = None

    @property
    def size_bytes(self) -> int:
        if self.binary_image is not None:
            return max(len(self.data), self.binary_image.vm_size_bytes)
        return len(self.data)

    @property
    def magic(self) -> bytes:
        if self.binary_image is not None:
            return self.binary_image.magic
        return bytes(self.data[:4])


class DeviceNode(Inode):
    kind = "device"

    __slots__ = ("driver",)

    def __init__(self, driver: object) -> None:
        super().__init__()
        self.driver = driver


class SocketNode(Inode):
    """A bound AF_UNIX socket name."""

    kind = "socket"

    __slots__ = ("listener",)

    def __init__(self, listener: object) -> None:
        super().__init__()
        self.listener = listener


#: Approximate kernel-side size of one dentry-cache entry (bytes) — what
#: the pressure evictor reports as released when the cache is dropped
#: (a Linux ``struct dentry`` is ~192 bytes on 32-bit ARM).
DCACHE_ENTRY_BYTES = 192


class VFS:
    """The mounted filesystem tree plus path resolution."""

    def __init__(self, machine: "Machine") -> None:
        self._machine = machine
        self.root = Directory()
        # Hot-path engine: the per-component cost hoisted out of resolve
        # (one float value + its single-component picosecond form, both
        # resolved once at boot instead of a string lookup per call).
        self._lookup_ns = machine.costs["path_lookup_component"]
        self._lookup_ps = machine.cost_ps("path_lookup_component")
        self._dcache_hit_ps = machine.cost_ps("dcache_hit")
        # Per-depth picosecond table: entry ``n`` is the single rounding
        # of ``n`` components' worth of lookup time — exactly what
        # ``clock.charge(_lookup_ns * n)`` computes, hoisted to boot.
        self._lookup_ps_by_depth = [
            ns_to_ps(self._lookup_ns * n) for n in range(33)
        ]
        # Wall-clock memo: path string -> component tuple.  Purely a
        # parsing cache (no inodes, no virtual-time effect) so it needs
        # no invalidation; bounded to keep pathological workloads honest.
        self._split_cache: Dict[str, tuple] = {}
        #: Linux-dcache ablation (off by default: the default
        #: configuration walks every component, which is what makes the
        #: Cider prototype's dyld walk expensive — paper §6.2).
        self.dcache_enabled = False
        self._dcache: Dict[str, Inode] = {}
        #: (hits, misses) counters for tests and EXPERIMENTS rows.
        self.dcache_hits = 0
        self.dcache_misses = 0

    # -- path plumbing --------------------------------------------------------

    @staticmethod
    def split(path: str) -> List[str]:
        return [part for part in path.split("/") if part and part != "."]

    def _charge_lookup(self, components: int) -> None:
        if components <= 1:
            self._machine.clock.charge_ps(self._lookup_ps)
        elif components < 33:
            # Precomputed single rounding of the product — bit-identical
            # to the historical ``charge(name, n)`` float path.
            self._machine.clock.charge_ps(
                self._lookup_ps_by_depth[components]
            )
        else:
            self._machine.clock.charge(self._lookup_ns * components)

    # -- dentry cache (warm-path ablation) ------------------------------------

    def enable_dcache(self, kernel: Optional[object] = None) -> None:
        """Turn on the Linux-style dentry cache (virtual-time ablation).

        Warm absolute lookups charge one ``dcache_hit`` instead of the
        per-component walk.  When ``kernel`` is given, the cache registers
        a pressure evictor so jetsam can drop it before killing anyone
        (the same registry dyld's shared cache uses, PR 3).
        """
        self.dcache_enabled = True
        if kernel is not None:
            kernel.pressure_evictors.append(self.drop_dcache)

    def drop_dcache(self) -> int:
        """Drop every cached dentry; returns the bytes released."""
        released = len(self._dcache) * DCACHE_ENTRY_BYTES
        self._dcache.clear()
        return released

    def invalidate_dcache(self, path: str) -> None:
        """Remove ``path`` and everything under it from the dcache.

        Called on unlink/rename/rmdir: a positive dentry must never
        outlive its directory entry (no negative entries are cached, so
        creations need no invalidation).
        """
        if not self._dcache:
            return
        key = "/" + "/".join(self.split(path))
        prefix = key + "/"
        stale = [
            cached
            for cached in self._dcache
            if cached == key or cached.startswith(prefix)
        ]
        for cached in stale:
            del self._dcache[cached]

    def resolve(self, path: str, cwd: Optional[Directory] = None) -> Inode:
        """Resolve ``path`` to an inode, charging per component.

        A ``kernel.vfs.lookup`` profiling span when observability is on —
        which is how dyld's 115-library filesystem walk shows up as VFS
        time nested under ``ios.dyld.walk`` in the flame table."""
        obs = self._machine.obs
        if obs is None:
            return self._resolve_body(path, cwd)
        span = obs.enter_span("kernel.vfs.lookup", path, None)
        try:
            return self._resolve_body(path, cwd)
        finally:
            obs.exit_span(span)

    def _resolve_body(self, path: str, cwd: Optional[Directory]) -> Inode:
        machine = self._machine
        parts = self._split_cache.get(path)
        if parts is None:
            parts = tuple(
                part for part in path.split("/") if part and part != "."
            )
            if len(self._split_cache) >= 4096:
                self._split_cache.clear()
            self._split_cache[path] = parts
        absolute = path.startswith("/") or cwd is None
        cache_key: Optional[str] = None
        if self.dcache_enabled and absolute:
            cache_key = "/" + "/".join(parts)
            node = self._dcache.get(cache_key)
            if node is not None:
                # Warm path: one hash probe replaces the component walk.
                self.dcache_hits += 1
                machine.clock.charge_ps(self._dcache_hit_ps)
                if machine.faults is not None:
                    self._check_lookup_fault(path)
                return node
            self.dcache_misses += 1
        self._charge_lookup(len(parts))
        if machine.faults is not None:
            self._check_lookup_fault(path)
        node: Inode = self.root if absolute else cwd
        for part in parts:
            if not isinstance(node, Directory):
                raise SyscallError(ENOTDIR, path)
            child = node.entries.get(part)
            if child is None:
                raise SyscallError(ENOENT, path)
            node = child
        if cache_key is not None:
            self._dcache[cache_key] = node
        return node

    def _check_lookup_fault(self, path: str) -> None:
        if self._machine.faults is None:
            return
        outcome = self._machine.faults.check("vfs.lookup", path=path)
        if outcome is not None:
            if outcome.kind == "delay":
                self._machine.charge_ns(float(outcome.value))  # type: ignore[arg-type]
            elif outcome.kind == "errno":
                raise SyscallError(
                    int(outcome.value),  # type: ignore[call-overload]
                    f"fault injected: lookup {path!r}",
                )
            else:  # kern/signal degrade to transient EIO here
                from .errno import EIO

                raise SyscallError(EIO, f"fault injected: lookup {path!r}")

    def resolve_parent(
        self, path: str, cwd: Optional[Directory] = None
    ) -> Tuple[Directory, str]:
        """Resolve all but the last component; return (dir, last_name)."""
        parts = self.split(path)
        if not parts:
            raise SyscallError(ENOENT, path)
        self._charge_lookup(len(parts))
        node: Inode = self.root if path.startswith("/") or cwd is None else cwd
        for part in parts[:-1]:
            if not isinstance(node, Directory):
                raise SyscallError(ENOTDIR, path)
            child = node.lookup(part)
            if child is None:
                raise SyscallError(ENOENT, path)
            node = child
        if not isinstance(node, Directory):
            raise SyscallError(ENOTDIR, path)
        return node, parts[-1]

    def exists(self, path: str, cwd: Optional[Directory] = None) -> bool:
        try:
            self.resolve(path, cwd)
            return True
        except SyscallError:
            return False

    # -- namespace operations ---------------------------------------------------

    def _journal(self, path: str, cwd: Optional[Directory]):
        """The journal device if this operation should be journalled:
        a journal is enabled, we are not inside its own replay, and the
        path is canonicalisable (absolute, or resolved against the root).
        One attribute load + bool tests — charges nothing."""
        journal = self._machine.storage.journal
        if journal is None or journal.replaying:
            return None
        if not (path.startswith("/") or cwd is None):
            return None
        return journal

    def _canon(self, path: str) -> str:
        return "/" + "/".join(self.split(path))

    def mkdir(self, path: str, cwd: Optional[Directory] = None) -> Directory:
        parent, name = self.resolve_parent(path, cwd)
        directory = Directory()
        parent.link(name, directory)
        journal = self._journal(path, cwd)
        if journal is not None:
            journal.log_mkdir(self._canon(path))
        return directory

    def makedirs(self, path: str) -> Directory:
        """mkdir -p."""
        journal = self._journal(path, None)
        node: Inode = self.root
        prefix: List[str] = []
        for part in self.split(path):
            if not isinstance(node, Directory):
                raise SyscallError(ENOTDIR, path)
            prefix.append(part)
            child = node.lookup(part)
            if child is None:
                child = Directory()
                node.link(part, child)
                if journal is not None:
                    journal.log_mkdir("/" + "/".join(prefix))
            node = child
        if not isinstance(node, Directory):
            raise SyscallError(ENOTDIR, path)
        return node

    def create_file(
        self,
        path: str,
        data: bytes = b"",
        binary_image: Optional[BinaryImage] = None,
        cwd: Optional[Directory] = None,
        exist_ok: bool = False,
    ) -> RegularFile:
        parent, name = self.resolve_parent(path, cwd)
        existing = parent.lookup(name)
        if existing is not None:
            if exist_ok and isinstance(existing, RegularFile):
                return existing
            raise SyscallError(EEXIST, path)
        self._machine.charge("file_create")
        inode = RegularFile(data, binary_image)
        parent.link(name, inode)
        journal = self._journal(path, cwd)
        if journal is not None:
            journal.log_create(self._canon(path), inode)
        return inode

    def add_device(self, path: str, driver: object) -> DeviceNode:
        parent, name = self.resolve_parent(path, None)
        node = DeviceNode(driver)
        parent.link(name, node)
        return node

    def bind_socket(self, path: str, listener: object) -> SocketNode:
        parent, name = self.resolve_parent(path, None)
        node = SocketNode(listener)
        parent.link(name, node)
        return node

    def unlink(self, path: str, cwd: Optional[Directory] = None) -> None:
        parent, name = self.resolve_parent(path, cwd)
        target = parent.lookup(name)
        if target is None:
            raise SyscallError(ENOENT, path)
        if isinstance(target, Directory):
            raise SyscallError(EISDIR, path)
        self._machine.charge("file_unlink")
        parent.unlink(name)
        if self.dcache_enabled:
            self.invalidate_dcache(path)
        journal = self._journal(path, cwd)
        if journal is not None:
            journal.log_unlink(self._canon(path), target)
        reserved = getattr(target, "storage_reserved", 0)
        if reserved:
            res = self._machine.resources
            if res is not None:
                res.release_storage(reserved)
            target.storage_reserved = 0  # type: ignore[attr-defined]

    def rmdir(self, path: str, cwd: Optional[Directory] = None) -> None:
        parent, name = self.resolve_parent(path, cwd)
        target = parent.lookup(name)
        if target is None:
            raise SyscallError(ENOENT, path)
        if not isinstance(target, Directory):
            raise SyscallError(ENOTDIR, path)
        if target.entries:
            raise SyscallError(ENOTEMPTY, path)
        parent.unlink(name)
        if self.dcache_enabled:
            self.invalidate_dcache(path)
        journal = self._journal(path, cwd)
        if journal is not None:
            journal.log_rmdir(self._canon(path))

    def rename(
        self,
        old_path: str,
        new_path: str,
        cwd: Optional[Directory] = None,
    ) -> None:
        """rename(2): atomically move ``old_path`` to ``new_path``.

        Replaces an existing non-directory target (releasing its storage
        reservation, like unlink).  Both names — and anything cached
        underneath either of them — drop out of the dcache.
        """
        old_parent, old_name = self.resolve_parent(old_path, cwd)
        source = old_parent.lookup(old_name)
        if source is None:
            raise SyscallError(ENOENT, old_path)
        new_parent, new_name = self.resolve_parent(new_path, cwd)
        existing = new_parent.lookup(new_name)
        if existing is not None:
            if isinstance(existing, Directory):
                if not isinstance(source, Directory):
                    raise SyscallError(EISDIR, new_path)
                if existing.entries:
                    raise SyscallError(ENOTEMPTY, new_path)
            elif isinstance(source, Directory):
                raise SyscallError(ENOTDIR, new_path)
            new_parent.unlink(new_name)
            reserved = getattr(existing, "storage_reserved", 0)
            if reserved:
                res = self._machine.resources
                if res is not None:
                    res.release_storage(reserved)
                existing.storage_reserved = 0  # type: ignore[attr-defined]
        self._machine.charge("file_unlink")
        old_parent.unlink(old_name)
        new_parent.link(new_name, source)
        if self.dcache_enabled:
            self.invalidate_dcache(old_path)
            self.invalidate_dcache(new_path)
        journal = self._journal(old_path, cwd)
        if journal is not None and (new_path.startswith("/") or cwd is None):
            journal.log_rename(
                self._canon(old_path), self._canon(new_path),
                replaced=existing,
            )

    def listdir(self, path: str, cwd: Optional[Directory] = None) -> List[str]:
        node = self.resolve(path, cwd)
        if not isinstance(node, Directory):
            raise SyscallError(ENOTDIR, path)
        return node.names()

    def install_binary(self, path: str, image: BinaryImage) -> RegularFile:
        """Place an executable/dylib into the tree, creating directories.
        Installing over an existing path replaces its image (a copy)."""
        parts = self.split(path)
        if len(parts) > 1:
            self.makedirs("/" + "/".join(parts[:-1]))
        node = self.create_file(path, binary_image=image, exist_ok=True)
        node.binary_image = image
        return node

    def walk(self, path: str = "/") -> List[str]:
        """All file paths under ``path`` (for tests and the installer)."""
        result: List[str] = []

        def _walk(node: Inode, prefix: str) -> None:
            if isinstance(node, Directory):
                for name in node.names():
                    _walk(node.entries[name], f"{prefix}/{name}")
            else:
                result.append(prefix or "/")

        start = self.resolve(path)
        _walk(start, "" if path == "/" else path.rstrip("/"))
        return result
