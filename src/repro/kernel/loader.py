"""The binfmt handler chain and the ELF loader.

A kernel probes the first bytes of an executable against its registered
:class:`BinfmtHandler` list — exactly the mechanism Cider hooks: the
vanilla Android kernel only knows ELF and rejects Mach-O with ENOEXEC,
while a Cider kernel registers the Mach-O handler
(:mod:`repro.compat.macho_loader`) alongside it.

A handler's ``load`` maps the image and returns the *start routine* (the
crt0 equivalent): a callable that runs the program's entry point under a
fresh user context and funnels its return value through the C library's
exit path (so atexit handlers run).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from ..binfmt import BinaryFormat, BinaryImage
from .errno import ENOENT, ENOEXEC, SyscallError
from .vfs import RegularFile

if TYPE_CHECKING:
    from .kernel import Kernel
    from .process import KThread, Process, UserContext

StartRoutine = Callable[["UserContext"], int]
LibcFactory = Callable[["UserContext"], object]


class BinfmtHandler:
    """One registered binary-format loader."""

    format: BinaryFormat

    def matches(self, image: BinaryImage) -> bool:
        raise NotImplementedError

    def load(
        self,
        kernel: "Kernel",
        process: "Process",
        thread: "KThread",
        image: BinaryImage,
        argv: List[str],
    ) -> StartRoutine:
        raise NotImplementedError


class LibrarySearchPath:
    """Resolves dependency names against VFS directories."""

    def __init__(self, kernel: "Kernel", directories: List[str]) -> None:
        self._kernel = kernel
        self.directories = list(directories)

    def find(self, dep_name: str) -> BinaryImage:
        vfs = self._kernel.vfs
        candidates = (
            [dep_name]
            if dep_name.startswith("/")
            else [f"{d}/{dep_name}" for d in self.directories]
        )
        for path in candidates:
            try:
                node = vfs.resolve(path)
            except SyscallError:
                continue
            if isinstance(node, RegularFile) and node.binary_image is not None:
                return node.binary_image
        raise SyscallError(ENOENT, f"library {dep_name!r} not found")


class ElfLoader(BinfmtHandler):
    """The Linux kernel's ELF loader plus the Android in-process linker."""

    format = BinaryFormat.ELF

    def __init__(
        self,
        libc_factory: LibcFactory,
        search_dirs: Optional[List[str]] = None,
    ) -> None:
        self._libc_factory = libc_factory
        self._search_dirs = search_dirs or ["/system/lib", "/vendor/lib"]

    def matches(self, image: BinaryImage) -> bool:
        return image.format is BinaryFormat.ELF

    def load(
        self,
        kernel: "Kernel",
        process: "Process",
        thread: "KThread",
        image: BinaryImage,
        argv: List[str],
    ) -> StartRoutine:
        machine = kernel.machine
        machine.charge("elf_load_base")
        machine.charge("elf_load_per_mb", image.vm_size_mb)
        for seg in image.segments:
            process.address_space.map(
                f"{image.name}:{seg.name}", seg.size_bytes, seg.writable
            )
        process.binary = image
        process.libc_factory = self._libc_factory

        search = LibrarySearchPath(kernel, self._search_dirs)
        self._link_closure(kernel, process, image, search)

        entry = image.entry

        def start(ctx: "UserContext") -> int:
            result = entry(ctx, list(argv))
            code = result if isinstance(result, int) else 0
            # crt0 epilogue: flow through libc exit (atexit handlers).
            exit_fn = getattr(ctx.libc, "exit", None)
            if exit_fn is not None:
                exit_fn(code)
            return code

        return start

    def _link_closure(
        self,
        kernel: "Kernel",
        process: "Process",
        root: BinaryImage,
        search: LibrarySearchPath,
    ) -> None:
        """Map the transitive dependency closure (breadth-first)."""
        loaded: Set[str] = set()
        queue = list(root.deps)
        while queue:
            dep = queue.pop(0)
            if dep in loaded:
                continue
            loaded.add(dep)
            lib = search.find(dep)
            kernel.machine.charge("linker_lib_load")
            process.address_space.map(f"lib:{lib.name}", lib.vm_size_bytes)
            process.loaded_libraries[lib.name] = lib
            if lib.install_name != lib.name:
                process.loaded_libraries[lib.install_name] = lib
            queue.extend(d for d in lib.deps if d not in loaded)


class LoaderChain:
    """The kernel's ordered list of binfmt handlers."""

    def __init__(self) -> None:
        self._handlers: List[BinfmtHandler] = []

    def register(self, handler: BinfmtHandler) -> None:
        self._handlers.append(handler)

    def formats(self) -> List[BinaryFormat]:
        return [handler.format for handler in self._handlers]

    def find(self, image: BinaryImage) -> BinfmtHandler:
        for handler in self._handlers:
            if handler.matches(image):
                return handler
        raise SyscallError(
            ENOEXEC, f"no binfmt handler for {image.format.value} binary"
        )
