"""Kernel configuration: turning a Linux kernel into Cider, and building
the XNU-native personality for the iPad mini.

This module is the assembly point of the whole compatibility
architecture (paper Fig. 3): personas and dispatch tables, the Mach-O
loader + dyld, the duct-taped subsystems (Mach IPC, psynch, semaphores,
I/O Kit with the Linux device glue), signal translation, the generated
diplomatic OpenGL ES library, IOSurface interposition, the iOS FS
overlay, the framework closure, and the background services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from .. import xnu as xnu_pkg
from ..android.libs import install_android_graphics_libs
from ..android.surfaceflinger import SurfaceFlinger
from ..binfmt.image import Symbol
from ..compat.macho_loader import MachOLoader
from ..compat.signals import SignalTranslator
from ..compat.xnu_abi import SYS_set_persona, XNUABI
from ..ducttape import CxxRuntime, DuctTapeLinker, LinuxDuctTapeEnv
from ..ducttape.iokit_glue import (
    install_apple_graphics_services,
    install_iokit_linux_glue,
)
from ..ios.binaries import install_ios_binaries
from ..ios.dyld import Dyld
from ..ios.frameworks import install_ios_frameworks, install_shared_cache
from ..ios.iosurface import cider_iosurface_exports
from ..ios.libsystem import IOSLibc
from ..ios.opengles import build_cider_opengles
from ..kernel.syscalls_linux import NR_set_persona, sys_set_persona
from ..persona import IOS_TLS_LAYOUT, Persona
from ..xnu import iokit as xnu_iokit
from ..xnu import ipc as xnu_ipc
from ..xnu import pthread_support as xnu_psynch
from ..xnu import sync_sema as xnu_sema

if TYPE_CHECKING:
    from ..diplomacy.generator import GenerationReport
    from ..kernel.process import Process
    from .system import System


@dataclass
class IOSRuntime:
    """Handle onto the iOS side of a configured system."""

    launchd: Optional["Process"] = None
    dyld: Optional[Dyld] = None
    gles_report: Optional["GenerationReport"] = None
    linked_subsystems: Dict[str, object] = field(default_factory=dict)


def _link_foreign_subsystems(kernel) -> Dict[str, object]:
    """Duct-tape the three XNU subsystems into the kernel (paper §4.2:
    pthread support, Mach IPC, and I/O Kit)."""
    env = LinuxDuctTapeEnv(kernel)
    linker = DuctTapeLinker(env)
    kernel.ducttape_linker = linker

    ipc = linker.link("mach_ipc", [xnu_ipc], lambda e: xnu_ipc.MachIPC(e))
    kernel.mach_subsystem = ipc.instance

    psynch = linker.link(
        "pthread_support",
        [xnu_psynch],
        lambda e: xnu_psynch.PsynchSupport(e),
    )
    kernel.psynch_subsystem = psynch.instance

    sema = linker.link(
        "sync_sema", [xnu_sema], lambda e: xnu_sema.SyncSema(e)
    )
    kernel.sema_subsystem = sema.instance

    runtime = CxxRuntime(kernel.machine)
    kernel.cxx_runtime = runtime
    iokit = linker.link(
        "iokit",
        [xnu_iokit],
        lambda e: xnu_iokit.IOKitFramework(e, runtime),
    )
    kernel.iokit = iokit.instance
    return {
        "mach_ipc": ipc,
        "pthread_support": psynch,
        "sync_sema": sema,
        "iokit": iokit,
    }


def _register_set_persona(kernel, ios_abi: XNUABI) -> None:
    """set_persona is reachable from every persona (paper §4.3)."""
    android_abi = kernel.personas.get("android").abi if (
        "android" in kernel.personas
    ) else None
    if android_abi is not None and NR_set_persona not in android_abi.table:
        android_abi.table.register(
            NR_set_persona, "set_persona", sys_set_persona
        )
    ios_abi.bsd.register(SYS_set_persona, "set_persona", sys_set_persona)


def _interpose_graphics(kernel) -> "GenerationReport":
    """Replace the iOS OpenGL ES library with generated diplomats and
    interpose the IOSurface entry points (paper §5.3)."""
    vfs = kernel.vfs
    gles_path = "/System/Library/Frameworks/OpenGLES.framework/OpenGLES"
    gles_node = vfs.resolve(gles_path)
    domestic = install_android_graphics_libs(kernel)
    replacement, report = build_cider_opengles(
        gles_node.binary_image, list(domestic.values())
    )
    gles_node.binary_image = replacement

    iosurface_path = (
        "/System/Library/PrivateFrameworks/IOSurface.framework/IOSurface"
    )
    iosurface_image = vfs.resolve(iosurface_path).binary_image
    for name, fn in cider_iosurface_exports().items():
        iosurface_image.exports[name] = Symbol(name, fn=fn)
    return report


def enable_cider(
    system: "System",
    fence_bug: bool = True,
    shared_cache: bool = False,
    start_services: bool = True,
    dcache: bool = False,
    launch_closures: bool = False,
    cow_fork: bool = False,
) -> IOSRuntime:
    """Turn the system's Linux kernel into a Cider kernel.

    ``dcache``, ``launch_closures`` and ``cow_fork`` are the warm-path
    ablations (DESIGN.md §9): each changes the *virtual-time* cost of
    repeated lookups / launches / forks and therefore defaults to off so
    that the default configuration reproduces the paper's cold-path
    numbers bit-identically.
    """
    kernel = system.kernel
    machine = system.machine
    kernel.name = "cider"
    kernel.cider_enabled = True
    kernel.cider_config = {
        "fence_bug": fence_bug,
        "shared_cache": shared_cache,
        "dcache": dcache,
        "launch_closures": launch_closures,
        "cow_fork": cow_fork,
    }
    if dcache:
        kernel.vfs.enable_dcache(kernel)
    if cow_fork:
        kernel.cow_fork = True

    # Foreign persona: XNU ABI (translated) + iOS TLS layout.
    ios_abi = XNUABI(native=False)
    ios_persona = Persona("ios", ios_abi, IOS_TLS_LAYOUT)
    kernel.register_persona(ios_persona)
    _register_set_persona(kernel, ios_abi)
    kernel.signal_translator = SignalTranslator()

    linked = _link_foreign_subsystems(kernel)
    install_iokit_linux_glue(kernel, kernel.iokit, kernel.cxx_runtime)

    # Mach-O loading: kernel loader + user-space dyld.
    dyld = Dyld(use_shared_cache=shared_cache, use_closures=launch_closures)
    kernel.dyld = dyld  # evict_shared_cache invalidates closures through this
    kernel.register_loader(MachOLoader(IOSLibc, dyld))

    # Display service (SurfaceFlinger owns the panel on Android).
    if getattr(machine, "surfaceflinger", None) is None:
        machine.surfaceflinger = SurfaceFlinger(machine)

    # iOS user space: overlay FS, frameworks, interposition, binaries.
    from .fs_overlay import create_ios_fs_overlay

    create_ios_fs_overlay(kernel)
    install_ios_frameworks(kernel, shared_cache=False)
    report = _interpose_graphics(kernel)
    install_ios_binaries(kernel)
    if shared_cache:
        # Future-work ablation: the prototype lacked this optimisation.
        install_shared_cache(kernel)

    runtime = IOSRuntime(dyld=dyld, gles_report=report, linked_subsystems=linked)
    if start_services:
        runtime.launchd = kernel.start_process(
            "/sbin/launchd", name="launchd", daemon=True
        )
        # launchd sits in the SYSTEM jetsam band: never a pressure victim.
        from ..kernel.pressure import JETSAM_PRIORITY_SYSTEM

        runtime.launchd.jetsam_priority = JETSAM_PRIORITY_SYSTEM
        # Let launchd reach its steady state (bootstrap port published,
        # configd/notifyd registered) before any app can run.
        machine.run()
    system.ios = runtime
    return runtime


def enable_xnu_native(
    system: "System",
    with_springboard: bool = False,
    start_services: bool = True,
) -> IOSRuntime:
    """Configure the iPad-mini kernel: the XNU-native personality.

    The same foreign subsystem *source* is bound in (it is native here);
    only the iOS persona exists — Android/ELF binaries are rejected —
    and the Apple-proprietary graphics services are present, so the
    native OpenGL ES / IOSurface libraries work without diplomats.
    """
    kernel = system.kernel
    machine = system.machine
    kernel.name = "xnu"
    kernel.cider_enabled = False

    ios_abi = XNUABI(native=True)
    ios_persona = Persona("ios", ios_abi, IOS_TLS_LAYOUT)
    kernel.register_persona(ios_persona, default=True)
    kernel.signal_translator = SignalTranslator()

    linked = _link_foreign_subsystems(kernel)
    install_iokit_linux_glue(kernel, kernel.iokit, kernel.cxx_runtime)
    install_apple_graphics_services(kernel, kernel.iokit, kernel.cxx_runtime)

    dyld = Dyld(use_shared_cache=machine.profile.has_quirk("dyld_shared_cache"))
    kernel.dyld = dyld  # evict_shared_cache invalidates closures through this
    kernel.register_loader(MachOLoader(IOSLibc, dyld))

    # backboardd/SpringBoard composites the display on iOS; the generic
    # compositor model stands in for it.
    machine.surfaceflinger = SurfaceFlinger(machine)

    from .fs_overlay import create_ios_fs_overlay

    create_ios_fs_overlay(kernel)
    install_ios_frameworks(kernel, shared_cache=True)
    install_ios_binaries(kernel)

    runtime = IOSRuntime(dyld=dyld, linked_subsystems=linked)
    if start_services:
        runtime.launchd = kernel.start_process(
            "/sbin/launchd", name="launchd", daemon=True
        )
        from ..kernel.pressure import JETSAM_PRIORITY_SYSTEM

        runtime.launchd.jetsam_priority = JETSAM_PRIORITY_SYSTEM
        machine.run()
    system.ios = runtime
    return runtime
