"""System configuration builders — the paper's four measured systems.

* :func:`build_vanilla_android` — Linux binaries and Android apps on
  unmodified Android (the normalisation baseline).
* :func:`build_cider` — the Cider kernel on the Nexus 7: Linux ABI plus
  the full XNU compatibility architecture (personas, Mach-O loader,
  duct-taped Mach IPC / psynch / I/O Kit, signal translation,
  ``set_persona``), running Android *and* iOS binaries.
* :func:`build_ipad_mini` — iOS binaries on a jailbroken iPad mini: the
  XNU-native kernel personality on the Apple device profile.

Each builder returns a :class:`System`, the public handle used by tests,
examples and the benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional

from ..android.binaries import install_base_android
from ..android.bionic import Bionic
from ..hw.machine import DeviceProfile, Machine
from ..hw.profiles import ipad_mini, nexus7
from ..kernel import ElfLoader, Kernel
from ..kernel.process import Process
from ..kernel.syscalls_linux import LinuxABI
from ..persona import ANDROID_TLS_LAYOUT, IOS_TLS_LAYOUT, Persona


class System:
    """A booted system under test."""

    def __init__(self, machine: Machine, kernel: Kernel, label: str) -> None:
        self.machine = machine
        self.kernel = kernel
        self.label = label
        #: Populated by the Android framework boot (build steps below).
        self.android = None
        #: Populated on Cider/iOS systems.
        self.ios = None

    # -- running programs -----------------------------------------------------

    def run_program(
        self, path: str, argv: Optional[List[str]] = None
    ) -> int:
        """Launch ``path`` and run the simulation until it exits."""
        process = self.kernel.start_process(path, argv)
        return self.wait_for(process)

    def wait_for(self, process: Process) -> int:
        thread = process.main_thread()
        result = self.machine.scheduler.run_until_done(thread.sim_thread)
        return result if isinstance(result, int) else 0

    def run_until_idle(self) -> None:
        self.machine.run()

    def shutdown(self) -> None:
        self.machine.shutdown()

    def __enter__(self) -> "System":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"<System {self.label!r} on {self.machine.profile.name!r}>"


def _boot_linux_kernel(profile: DeviceProfile, label: str) -> System:
    machine = profile.boot()
    kernel = Kernel(machine, name="linux").boot()
    android_persona = Persona("android", LinuxABI(), ANDROID_TLS_LAYOUT)
    kernel.register_persona(android_persona, default=True)
    kernel.register_loader(ElfLoader(Bionic))
    install_base_android(kernel)
    # The display stack is always present on an Android device: the
    # graphics .so set plus the SurfaceFlinger service.
    from ..android.libs import install_android_graphics_libs
    from ..android.surfaceflinger import SurfaceFlinger

    install_android_graphics_libs(kernel)
    machine.surfaceflinger = SurfaceFlinger(machine)
    return System(machine, kernel, label)


def build_vanilla_android(
    profile: Optional[DeviceProfile] = None,
    with_framework: bool = False,
    with_httpd: bool = False,
) -> System:
    """Configuration 1: unmodified Android.

    ``with_httpd`` starts the in-sim HTTP origin (:mod:`repro.net.http`)
    under Android-init style supervision.
    """
    system = _boot_linux_kernel(profile or nexus7(), "vanilla-android")
    if with_framework:
        from ..android.framework import boot_android_framework

        system.android = boot_android_framework(system)
    if with_httpd:
        from ..net.http import start_httpd_android

        start_httpd_android(system)
        system.run_until_idle()  # let the origin reach its accept loop
    return system


def build_cider(
    profile: Optional[DeviceProfile] = None,
    with_framework: bool = False,
    fence_bug: bool = True,
    shared_cache: bool = False,
    dcache: bool = False,
    launch_closures: bool = False,
    cow_fork: bool = False,
    with_httpd: bool = False,
) -> System:
    """Configurations 2 and 3: the Cider kernel on the Nexus 7.

    ``fence_bug`` keeps the prototype's broken GLES fence primitive
    (paper §6.3); ``shared_cache`` enables the dyld shared cache the
    prototype lacked (paper future work).  ``dcache`` (VFS dentry cache),
    ``launch_closures`` (dyld launch closures) and ``cow_fork``
    (copy-on-write fork) are the warm-path ablations of DESIGN.md §9 —
    all toggles default to off so the default configuration reproduces
    the paper's measured prototype.  ``with_httpd`` installs the in-sim
    HTTP origin as a launchd keep-alive job *before* launchd boots
    (:mod:`repro.net.http`), so both personas' clients can fetch from it.
    """
    system = _boot_linux_kernel(profile or nexus7(), "cider")
    if with_httpd:
        from ..net.http import install_httpd_ios

        install_httpd_ios(system)
    from .enable import enable_cider

    enable_cider(
        system,
        fence_bug=fence_bug,
        shared_cache=shared_cache,
        dcache=dcache,
        launch_closures=launch_closures,
        cow_fork=cow_fork,
    )
    if with_framework:
        from ..android.framework import boot_android_framework

        system.android = boot_android_framework(system)
    return system


def build_ipad_mini(with_springboard: bool = False) -> System:
    """Configuration 4: iOS binaries on the iPad mini (XNU-native)."""
    machine = ipad_mini().boot()
    kernel = Kernel(machine, name="xnu").boot()
    from .enable import enable_xnu_native

    system = System(machine, kernel, "ipad-mini")
    enable_xnu_native(system, with_springboard=with_springboard)
    return system
