"""System configuration builders — the paper's four measured systems.

* :func:`build_vanilla_android` — Linux binaries and Android apps on
  unmodified Android (the normalisation baseline).
* :func:`build_cider` — the Cider kernel on the Nexus 7: Linux ABI plus
  the full XNU compatibility architecture (personas, Mach-O loader,
  duct-taped Mach IPC / psynch / I/O Kit, signal translation,
  ``set_persona``), running Android *and* iOS binaries.
* :func:`build_ipad_mini` — iOS binaries on a jailbroken iPad mini: the
  XNU-native kernel personality on the Apple device profile.

Each builder returns a :class:`System`, the public handle used by tests,
examples and the benchmark harness.

Crash–reboot support: builders pass ``durable=True`` to put a journaled
block device under the VFS (:class:`repro.hw.storage.JournalDevice`) and
always record a *rebuild recipe* — the builder's own userspace
installation steps — so :meth:`System.reboot` can power-cycle the
machine, reinstall the boot image, replay the journal, fsck, and restart
the supervised services, emitting a byte-comparable recovery log.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..android.binaries import install_base_android
from ..android.bionic import Bionic
from ..hw.machine import DeviceProfile, Machine
from ..hw.profiles import ipad_mini, nexus7
from ..kernel import ElfLoader, Kernel
from ..kernel.process import Process
from ..kernel.syscalls_linux import LinuxABI
from ..persona import ANDROID_TLS_LAYOUT, IOS_TLS_LAYOUT, Persona


class System:
    """A booted system under test."""

    def __init__(self, machine: Machine, kernel: Kernel, label: str) -> None:
        self.machine = machine
        self.kernel = kernel
        self.label = label
        #: Populated by the Android framework boot (build steps below).
        self.android = None
        #: Populated on Cider/iOS systems.
        self.ios = None
        #: The builder's rebuild recipe (fresh kernel + userspace on the
        #: same machine) and service starter — what :meth:`reboot` runs.
        self._rebuild: Optional[Callable[["System"], None]] = None
        self._start_services_fn: Optional[Callable[["System"], None]] = None
        #: Extra installers (workload binaries, demo apps) re-run on
        #: every boot — register with :meth:`add_boot_task`.
        self.boot_tasks: List[Callable[["System"], None]] = []
        #: The most recent reboot's artifacts.
        self.recovery_log = None
        self.fsck_report = None

    # -- running programs -----------------------------------------------------

    def run_program(
        self, path: str, argv: Optional[List[str]] = None
    ) -> int:
        """Launch ``path`` and run the simulation until it exits."""
        process = self.kernel.start_process(path, argv)
        return self.wait_for(process)

    def wait_for(self, process: Process) -> int:
        thread = process.main_thread()
        result = self.machine.scheduler.run_until_done(thread.sim_thread)
        return result if isinstance(result, int) else 0

    def run_until_idle(self) -> None:
        self.machine.run()

    def start_services(self) -> None:
        """Run the builder's service recipe (launchd, supervised daemons).

        Builders called with ``start_services=False`` stop at a
        *quiescent* point — no simulated thread exists yet — which is the
        only state a boot snapshot (:mod:`repro.sim.snapshot`) may
        capture.  Each snapshot clone calls this to finish its own boot;
        the combined charge is bit-identical to a fresh full build.
        """
        if self._start_services_fn is not None:
            self._start_services_fn(self)

    def shutdown(self) -> None:
        self.machine.shutdown()

    # -- crash recovery --------------------------------------------------------

    def add_boot_task(
        self, task: Callable[["System"], None], run_now: bool = True
    ) -> Callable[["System"], None]:
        """Register an installer re-run on every (re)boot — the way
        workloads keep their binaries present across reboots, exactly
        like a package living on the system image.  Boot tasks run with
        the journal suppressed: the files they install are part of the
        boot image (untracked, ino 0), not user data."""
        self.boot_tasks.append(task)
        if run_now:
            self._run_boot_task(task)
        return task

    def _run_boot_task(self, task: Callable[["System"], None]) -> None:
        journal = self.machine.storage.journal
        if journal is None:
            task(self)
            return
        previous = journal.replaying
        journal.replaying = True
        try:
            task(self)
        finally:
            journal.replaying = previous

    def reboot(self, reason: str = "reboot"):
        """Power-cycle the machine and bring the system back up.

        Tears down every process and socket, reinstalls the boot image
        (the builder's rebuild recipe plus registered boot tasks),
        remounts the filesystem with journal replay, runs the fsck
        invariant checker, restarts the supervised services, and returns
        the byte-comparable :class:`~repro.kernel.recovery.RecoveryLog`
        (also stored as ``self.recovery_log`` / ``self.fsck_report``).
        """
        from ..kernel.recovery import RecoveryLog, format_power_cut, run_fsck

        if self._rebuild is None:
            raise RuntimeError(
                f"{self.label!r} was not built with a rebuild recipe; "
                "reboot is unsupported on this configuration"
            )
        machine = self.machine
        log = RecoveryLog()
        info = machine.reboot(reason)
        generation = info["generation"]
        log.line(f"recovery: begin generation={generation} reason={reason}")
        if info["was_crashed"]:
            log.line(f"recovery: crash cause: {info['panic_reason']}")
            if info["power_cut"] is not None:
                log.line(format_power_cut(info["power_cut"]))
            # The flight recorder's panic-flushed tail (pstore semantics:
            # read once, then gone).  After a power cut the in-RAM ring is
            # conceptually lost, but the panic handler journaled the same
            # tail to the WAL device's pstore region — prefer whichever
            # survived.
            tail = None
            if machine.flightrec is not None:
                tail = machine.flightrec.consume_flushed()
            journal_dev = machine.storage.journal
            if journal_dev is not None:
                if tail is None and journal_dev.pstore:
                    tail = list(journal_dev.pstore)
                journal_dev.pstore = []
            if tail:
                log.line(
                    f"recovery: flight recorder: {len(tail)} "
                    "pre-crash event(s)"
                )
                for entry in tail:
                    log.line(f"recovery: flightrec: {entry}")
        self.android = None
        self.ios = None
        # The rebuild recipe and the boot tasks reinstall the *boot
        # image* — untracked by the journal (ino 0), exactly like the
        # first boot where the journal is enabled only after userspace
        # is installed.
        self._run_boot_task(self._rebuild)
        for task in self.boot_tasks:
            self._run_boot_task(task)
        journal = machine.storage.journal
        fsck = None
        if journal is not None:
            with machine.span(
                "kernel.recovery.replay", str(generation), reason=reason
            ):
                stats = journal.remount(self.kernel.vfs)
                if stats["emergency_pages"]:
                    machine.charge(
                        "storage_flush_per_page", stats["emergency_pages"]
                    )
                if stats["emergency_records"]:
                    machine.charge(
                        "journal_commit_record", stats["emergency_records"]
                    )
                if stats["records_replayed"]:
                    machine.charge(
                        "remount_replay_record", stats["records_replayed"]
                    )
            log.line(
                f"recovery: remount: wrote back {stats['emergency_pages']} "
                f"page(s) + {stats['emergency_records']} record(s), "
                f"replayed {stats['records_replayed']} journal record(s)"
            )
            log.line(
                f"recovery: remount: reclaimed {stats['orphan_blocks']} "
                f"orphan block(s) from {stats['orphan_inodes']} inode(s); "
                f"mounted {stats['files']} file(s), {stats['dirs']} dir(s)"
            )
            with machine.span("kernel.recovery.fsck", str(generation)):
                fsck = run_fsck(self.kernel)
            for line in fsck.lines:
                log.line(line)
        else:
            log.line("recovery: no durable storage; fresh filesystem")
        if self._start_services_fn is not None:
            self._start_services_fn(self)
            log.line("recovery: supervised services restarted")
        log.line(
            f"recovery: complete generation={generation} "
            f"state={machine.state}"
        )
        self.recovery_log = log
        self.fsck_report = fsck
        return log

    def __enter__(self) -> "System":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"<System {self.label!r} on {self.machine.profile.name!r}>"


def run_world(systems: List["System"], thread) -> object:
    """Drive several machines round-robin until ``thread`` completes.

    ``Scheduler.run_until_done`` declares deadlock the moment its own
    machine has nothing runnable — correct for one machine, wrong for a
    world where the client legitimately idles while the origin machine
    serves its request.  This driver drains each machine's ready work in
    turn (cross-machine wakeups land directly on the peer scheduler's
    ready queue); only when *no* machine can run does it fire the timer
    with the least remaining virtual time, machine order breaking ties —
    fully deterministic.
    """
    from ..sim.errors import DeadlockError, MachinePanic

    machines = [system.machine for system in systems]
    # While the world owns the machines, no scheduler may jump its own
    # clock to a local timer on dispatch: a deadline (SO_RCVTIMEO, a
    # backoff sleep) must only expire once *every* machine is blocked —
    # the packet that would beat it may still be queued on a peer.
    for machine in machines:
        machine.scheduler.world_driven = True
    try:
        while thread.alive:
            progress = False
            for machine in machines:
                if machine.scheduler.run_ready():
                    progress = True
            if progress or not thread.alive:
                continue
            for machine in machines:
                if machine.crashed:
                    raise MachinePanic(
                        machine.panic_reason or "machine panic"
                    )
            nearest = None
            for machine in machines:
                remaining = machine.scheduler.next_timer_deadline()
                if remaining is None:
                    continue
                if nearest is None or remaining < nearest[0]:
                    nearest = (remaining, machine)
            if nearest is None:
                dumps = "\n\n".join(
                    f"== {system.label} ==\n"
                    + system.machine.scheduler.thread_dump()
                    for system in systems
                )
                raise DeadlockError(
                    "every machine in the world is blocked; thread dumps:\n"
                    + dumps
                )
            nearest[1].scheduler.fire_next_timer()
    finally:
        for machine in machines:
            machine.scheduler.world_driven = False
    if thread.failure is not None:
        raise thread.failure
    return thread.result


def _install_linux_userspace(machine: Machine) -> Kernel:
    """Boot a Linux kernel + Android base userspace on ``machine`` — the
    shared half of first boot and every reboot's rebuild recipe."""
    kernel = Kernel(machine, name="linux").boot()
    android_persona = Persona("android", LinuxABI(), ANDROID_TLS_LAYOUT)
    kernel.register_persona(android_persona, default=True)
    kernel.register_loader(ElfLoader(Bionic))
    install_base_android(kernel)
    # The display stack is always present on an Android device: the
    # graphics .so set plus the SurfaceFlinger service.
    from ..android.libs import install_android_graphics_libs
    from ..android.surfaceflinger import SurfaceFlinger

    install_android_graphics_libs(kernel)
    machine.surfaceflinger = SurfaceFlinger(machine)
    return kernel


def _boot_linux_kernel(profile: DeviceProfile, label: str) -> System:
    machine = profile.boot()
    kernel = _install_linux_userspace(machine)
    return System(machine, kernel, label)


def build_vanilla_android(
    profile: Optional[DeviceProfile] = None,
    with_framework: bool = False,
    with_httpd: bool = False,
    durable: bool = False,
    start_services: bool = True,
) -> System:
    """Configuration 1: unmodified Android.

    ``with_httpd`` starts the in-sim HTTP origin (:mod:`repro.net.http`)
    under Android-init style supervision.  ``durable`` enables the
    journaled block device (seeded from the profile) so the system
    survives crash–reboot cycles with consistent storage.
    ``start_services=False`` returns before any simulated thread is
    spawned — the snapshot-safe quiescent point; finish the boot later
    with :meth:`System.start_services`.
    """
    system = _boot_linux_kernel(profile or nexus7(), "vanilla-android")

    def _rebuild(sys_: System) -> None:
        sys_.kernel = _install_linux_userspace(sys_.machine)

    def _services(sys_: System) -> None:
        if with_framework:
            from ..android.framework import boot_android_framework

            sys_.android = boot_android_framework(sys_)
        if with_httpd:
            from ..net.http import start_httpd_android

            start_httpd_android(sys_)
            sys_.run_until_idle()  # let the origin reach its accept loop

    system._rebuild = _rebuild
    system._start_services_fn = _services
    if durable:
        system.machine.storage.enable_journal(system.machine.profile.seed)
    if start_services:
        _services(system)
    return system


def build_cider(
    profile: Optional[DeviceProfile] = None,
    with_framework: bool = False,
    fence_bug: bool = True,
    shared_cache: bool = False,
    dcache: bool = False,
    launch_closures: bool = False,
    cow_fork: bool = False,
    with_httpd: bool = False,
    durable: bool = False,
    start_services: bool = True,
) -> System:
    """Configurations 2 and 3: the Cider kernel on the Nexus 7.

    ``fence_bug`` keeps the prototype's broken GLES fence primitive
    (paper §6.3); ``shared_cache`` enables the dyld shared cache the
    prototype lacked (paper future work).  ``dcache`` (VFS dentry cache),
    ``launch_closures`` (dyld launch closures) and ``cow_fork``
    (copy-on-write fork) are the warm-path ablations of DESIGN.md §9 —
    all toggles default to off so the default configuration reproduces
    the paper's measured prototype.  ``with_httpd`` installs the in-sim
    HTTP origin as a launchd keep-alive job *before* launchd boots
    (:mod:`repro.net.http`), so both personas' clients can fetch from it.
    ``durable`` puts the journaled block device under the VFS (enabled
    after the boot image is installed, so only post-boot files are
    journal-tracked); with it the system survives :meth:`System.reboot`
    after a panic or power loss.  ``start_services=False`` stops at the
    snapshot-safe quiescent point (no launchd, no simulated threads yet);
    finish with :meth:`System.start_services`.
    """
    system = _boot_linux_kernel(profile or nexus7(), "cider")

    def _userspace(sys_: System) -> None:
        if with_httpd:
            from ..net.http import install_httpd_ios

            install_httpd_ios(sys_)
        from .enable import enable_cider

        enable_cider(
            sys_,
            fence_bug=fence_bug,
            shared_cache=shared_cache,
            start_services=False,
            dcache=dcache,
            launch_closures=launch_closures,
            cow_fork=cow_fork,
        )

    def _rebuild(sys_: System) -> None:
        sys_.kernel = _install_linux_userspace(sys_.machine)
        _userspace(sys_)

    def _services(sys_: System) -> None:
        _start_ios_services(sys_)
        if with_framework:
            from ..android.framework import boot_android_framework

            sys_.android = boot_android_framework(sys_)

    _userspace(system)
    system._rebuild = _rebuild
    system._start_services_fn = _services
    if durable:
        system.machine.storage.enable_journal(system.machine.profile.seed)
    if start_services:
        _services(system)
    return system


def _start_ios_services(system: System) -> None:
    """Start launchd and run it to its steady state — the service half
    of ``enable_cider``, shared with the reboot path."""
    from ..kernel.pressure import JETSAM_PRIORITY_SYSTEM

    runtime = system.ios
    runtime.launchd = system.kernel.start_process(
        "/sbin/launchd", name="launchd", daemon=True
    )
    # launchd sits in the SYSTEM jetsam band: never a pressure victim.
    runtime.launchd.jetsam_priority = JETSAM_PRIORITY_SYSTEM
    # Let launchd reach its steady state (bootstrap port published,
    # configd/notifyd registered) before any app can run.
    system.machine.run()


def build_ipad_mini(with_springboard: bool = False) -> System:
    """Configuration 4: iOS binaries on the iPad mini (XNU-native)."""
    machine = ipad_mini().boot()
    kernel = Kernel(machine, name="xnu").boot()
    from .enable import enable_xnu_native

    system = System(machine, kernel, "ipad-mini")
    enable_xnu_native(system, with_springboard=with_springboard)
    return system
