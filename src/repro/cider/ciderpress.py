"""CiderPress: the proxy Android app that hosts iOS apps.

"CiderPress is a standard Android app that integrates launch and
execution of an iOS app with Android's Launcher and system services.  It
is directly started by Android's Launcher, receives input such as touch
events and accelerometer data from the Android input subsystem, and its
life cycle is managed like any other Android app.  CiderPress launches
the foreign binary, and proxies its own display memory, incoming input
events, and app state changes to the iOS app." (paper §3)

Concretely:

* its window surface is handed to the iOS app (via a machine-level
  surface handle registry standing in for gralloc handle passing), so
  the iOS frame lands in the surface Android manages — screenshots show
  up in recents like any Android app;
* it binds a BSD socket, spawns the Mach-O binary with
  ``--cider-socket``/``--cider-surface`` arguments, and forwards every
  touch/accelerometer/lifecycle event over the socket to the app's
  eventpump thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..android.framework import AndroidApp, AppController, encode_framed
from ..hw.touchscreen import TouchEvent
from ..kernel.process import UserContext

if TYPE_CHECKING:
    from ..android.skia import Canvas


def _surface_registry(machine) -> Dict[int, object]:
    registry = getattr(machine, "cider_surfaces", None)
    if registry is None:
        registry = {}
        machine.cider_surfaces = registry
    return registry


class CiderPress(AndroidApp):
    """One CiderPress instance proxies one installed iOS app."""

    name = "ciderpress"
    icon = "C"
    draws_self = False

    def __init__(
        self,
        ios_binary_path: str,
        ios_app_name: str,
        icon: str = "C",
    ) -> None:
        self.ios_binary_path = ios_binary_path
        self.ios_app_name = ios_app_name
        self.icon = icon
        self.name = f"ciderpress:{ios_app_name}"
        self.socket_path = f"/tmp/cider-{ios_app_name}.sock"
        self._listen_fd: Optional[int] = None
        self._conn_fd: Optional[int] = None
        self._ctx: Optional[UserContext] = None
        self.ios_process = None
        self.events_forwarded = 0

    # -- lifecycle --------------------------------------------------------------

    def on_create(self, ctx: UserContext, controller: AppController) -> None:
        self._ctx = ctx
        libc = ctx.libc
        self._listen_fd = libc.socket()
        libc.bind(self._listen_fd, self.socket_path)

        # Proxy our display memory: publish the surface handle the iOS
        # app's EAGL bridge will attach to.
        surface = controller.surface
        registry = _surface_registry(ctx.machine)
        registry[surface.surface_id] = surface

        # Launch the foreign binary (posix_spawn through the kernel, the
        # same path launchd uses).
        argv = [
            self.ios_binary_path,
            "--cider-socket",
            self.socket_path,
            "--cider-surface",
            str(surface.surface_id),
        ]
        self.ios_process = ctx.kernel.start_process(
            self.ios_binary_path,
            argv,
            name=self.ios_app_name,
            daemon=True,
        )
        # The iOS app's eventpump connects to our socket.
        self._conn_fd = libc.accept(self._listen_fd)
        ctx.machine.emit("ciderpress", "launched", app=self.ios_app_name)

    def _forward(self, event: dict) -> None:
        if self._conn_fd is None or self._ctx is None:
            return
        result = self._ctx.libc.write(self._conn_fd, encode_framed(event))
        if result != -1:
            self.events_forwarded += 1

    # -- proxied input ---------------------------------------------------------------

    def handle_touch(self, ctx: UserContext, event: TouchEvent) -> None:
        self._forward(
            {
                "type": "touch",
                "kind": event.kind,
                "x": event.x,
                "y": event.y,
                "pointer_id": event.pointer_id,
            }
        )

    def handle_accel(self, ctx: UserContext, message: dict) -> None:
        """Accelerometer data from the Android input subsystem (§3)."""
        self._forward(
            {
                "type": "accel",
                "ax": message.get("ax", 0.0),
                "ay": message.get("ay", 0.0),
                "az": message.get("az", 0.0),
            }
        )

    def forward_accelerometer(self, ax: float, ay: float, az: float) -> None:
        self._forward({"type": "accel", "ax": ax, "ay": ay, "az": az})

    # -- proxied app state changes ------------------------------------------------------

    def on_pause(self, ctx: UserContext) -> None:
        self._forward({"type": "lifecycle", "action": "pause"})

    def on_resume(self, ctx: UserContext) -> None:
        self._forward({"type": "lifecycle", "action": "resume"})

    def on_stop(self, ctx: UserContext) -> None:
        self._forward({"type": "lifecycle", "action": "terminate"})
        if self._conn_fd is not None:
            ctx.libc.close(self._conn_fd)
            self._conn_fd = None

    def render(self, ctx: UserContext, canvas: "Canvas") -> None:
        # CiderPress draws nothing itself: the iOS app renders directly
        # into the proxied surface.  (A cold-start splash would go here.)
        pass
