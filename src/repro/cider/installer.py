"""iOS app installation: `.ipa` packages, decryption, Launcher shortcuts.

Paper §6.1: App Store apps "are encrypted and must be decrypted using
keys stored in encrypted, non-volatile memory found in an Apple device";
the authors used a gdb-based script on a jailbroken iPhone 3GS to dump
the decrypted text segment and re-package it, then "a small background
process automatically unpacked each .ipa and created Android shortcuts on
the Launcher home screen, pointing each one to the CiderPress Android
app", using the iOS app's icon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..binfmt import BinaryImage
from ..hw.machine import DeviceProfile

if TYPE_CHECKING:
    from ..android.framework import AndroidFramework
    from .system import System


class InstallError(Exception):
    pass


class DecryptionError(InstallError):
    """Decryption attempted somewhere without Apple's keys."""


@dataclass
class IpaPackage:
    """An iOS App Store Package."""

    bundle_id: str
    display_name: str
    icon: str
    binary: BinaryImage
    data_files: Dict[str, bytes] = field(default_factory=dict)

    @property
    def encrypted(self) -> bool:
        return self.binary.encrypted


@dataclass
class InstalledApp:
    """One unpacked app on the Cider device."""

    bundle_id: str
    display_name: str
    icon: str
    binary_path: str
    app_dir: str


#: Profiles that hold Apple's per-device decryption keys.
_APPLE_PROFILES = frozenset({"iphone3gs", "ipad_mini"})


def decrypt_ipa(package: IpaPackage, device: DeviceProfile) -> IpaPackage:
    """Run the gdb dump-and-repackage script on a jailbroken device."""
    if not package.encrypted:
        return package
    if device.name not in _APPLE_PROFILES:
        raise DecryptionError(
            f"{device.name} has no Apple decryption keys; use a jailbroken "
            "iPhone/iPad (paper §6.1)"
        )
    decrypted_binary = package.binary.decrypted_copy()
    return IpaPackage(
        bundle_id=package.bundle_id,
        display_name=package.display_name,
        icon=package.icon,
        binary=decrypted_binary,
        data_files=dict(package.data_files),
    )


def unpack_ipa(system: "System", package: IpaPackage) -> InstalledApp:
    """Unpack a (decrypted) .ipa into the overlay filesystem.

    Note: an encrypted package installs fine — it is the Mach-O loader
    that refuses it at launch, exactly like the prototype.
    """
    vfs = system.kernel.vfs
    app_dir = f"/var/mobile/Applications/{package.bundle_id}"
    vfs.makedirs(app_dir)
    vfs.makedirs(f"{app_dir}/Documents")
    binary_path = f"{app_dir}/{package.binary.name}"
    vfs.install_binary(binary_path, package.binary)
    for rel_path, data in package.data_files.items():
        full = f"{app_dir}/{rel_path}"
        parts = full.rsplit("/", 1)
        vfs.makedirs(parts[0])
        vfs.create_file(full, data=data, exist_ok=True)
    return InstalledApp(
        bundle_id=package.bundle_id,
        display_name=package.display_name,
        icon=package.icon,
        binary_path=binary_path,
        app_dir=app_dir,
    )


def install_ipa(
    system: "System",
    package: IpaPackage,
    framework: Optional["AndroidFramework"] = None,
) -> InstalledApp:
    """The background unpacker: unpack + CiderPress Launcher shortcut."""
    installed = unpack_ipa(system, package)
    if framework is not None:
        register_with_launcher(framework, installed)
    return installed


def register_with_launcher(
    framework: "AndroidFramework", installed: InstalledApp
) -> str:
    """Install a CiderPress-backed app entry and its home-screen
    shortcut (using the iOS app's own icon)."""
    from ..android.framework import Shortcut
    from .ciderpress import CiderPress

    app_key = f"ciderpress:{installed.display_name}"
    framework.install_app(
        app_key,
        lambda: CiderPress(
            installed.binary_path,
            installed.display_name,
            icon=installed.icon,
        ),
    )
    launcher_record = framework.running.get("launcher")
    if launcher_record is not None:
        launcher_record.app.add_shortcut(
            Shortcut(installed.display_name, installed.icon, app_key)
        )
    return app_key
