"""The iOS filesystem overlay.

"Cider overlays a file system hierarchy on the existing Android FS ...
the overlaid FS hierarchy allows iOS apps to access familiar iOS paths,
such as /Documents" (paper §3).  Framework binaries land under
/System/Library and /usr/lib (installed by
:mod:`repro.ios.frameworks`); this module creates the directory skeleton
and the handful of plist/config files services expect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from ..kernel import Kernel

#: The iOS directory skeleton overlaid onto the Android root.
IOS_OVERLAY_DIRS: List[str] = [
    "/Documents",
    "/Library",
    "/Library/Preferences",
    "/Library/Caches",
    "/System/Library/Frameworks",
    "/System/Library/PrivateFrameworks",
    "/System/Library/LaunchDaemons",
    "/usr/lib",
    "/usr/lib/system",
    "/usr/libexec",
    "/private/var/mobile",
    "/private/var/mobile/Applications",
    "/private/var/tmp",
    "/var/log",
    "/var/mobile",
    "/var/mobile/Applications",
    "/User",
]


def create_ios_fs_overlay(kernel: "Kernel") -> None:
    """Create the overlay skeleton and boot plists."""
    vfs = kernel.vfs
    for path in IOS_OVERLAY_DIRS:
        vfs.makedirs(path)
    vfs.create_file(
        "/System/Library/LaunchDaemons/com.apple.configd.plist",
        data=b"<plist><dict><key>Program</key>"
        b"<string>/usr/libexec/configd</string></dict></plist>",
        exist_ok=True,
    )
    vfs.create_file(
        "/System/Library/LaunchDaemons/com.apple.notifyd.plist",
        data=b"<plist><dict><key>Program</key>"
        b"<string>/usr/libexec/notifyd</string></dict></plist>",
        exist_ok=True,
    )


def overlay_present(kernel: "Kernel") -> bool:
    return all(kernel.vfs.exists(path) for path in IOS_OVERLAY_DIRS)
