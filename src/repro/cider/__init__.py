"""Cider system integration: the public entry points of the reproduction."""

from .installer import (
    DecryptionError,
    InstallError,
    InstalledApp,
    IpaPackage,
    decrypt_ipa,
    install_ipa,
    register_with_launcher,
    unpack_ipa,
)
from .system import System, build_cider, build_ipad_mini, build_vanilla_android

__all__ = [
    "DecryptionError",
    "InstallError",
    "InstalledApp",
    "IpaPackage",
    "decrypt_ipa",
    "install_ipa",
    "register_with_launcher",
    "unpack_ipa",
    "System",
    "build_cider",
    "build_ipad_mini",
    "build_vanilla_android",
]
