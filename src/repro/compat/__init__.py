"""Package."""
