"""Linux ↔ XNU signal translation.

The kernel generates and stores signals in Linux numbering; this
translation layer converts at the ABI boundary "based on the persona of a
given thread" (paper §4.1).  Both directions are covered:

* delivery: a Linux-numbered signal delivered to an iOS-persona thread is
  renumbered to XNU and pushed in a *larger XNU signal frame* (charged —
  it is the +25% the paper measures on the signal microbenchmark);
* generation: an iOS app's ``kill(pid, XNU_SIGUSR1)`` is converted to the
  Linux number before delivery, so Android threads receive it correctly.

The classic numbers (HUP..TERM, except BUS/USR1/USR2) coincide; the
divergent ones are mapped below.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..kernel import signals as linux_signals

if TYPE_CHECKING:
    from ..kernel.kernel import Kernel
    from ..kernel.process import KThread
    from ..kernel.signals import SigInfo

# XNU signal numbers that differ from Linux/ARM.
XNU_SIGEMT = 7
XNU_SIGBUS = 10
XNU_SIGSYS = 12
XNU_SIGURG = 16
XNU_SIGSTOP = 17
XNU_SIGTSTP = 18
XNU_SIGCONT = 19
XNU_SIGCHLD = 20
XNU_SIGIO = 23
XNU_SIGINFO = 29
XNU_SIGUSR1 = 30
XNU_SIGUSR2 = 31

#: Linux number -> XNU number for every divergent slot.  The mapping is
#: a complete bijection over 1..31: signals with no counterpart on the
#: other side (Linux SIGSTKFLT/SIGPWR, XNU SIGEMT/SIGINFO) are paired so
#: that translation is invertible and no number collides.
LINUX_TO_XNU: Dict[int, int] = {
    linux_signals.SIGBUS: XNU_SIGBUS,  # 7 (BUS) -> 10
    linux_signals.SIGUSR1: XNU_SIGUSR1,  # 10 -> 30
    linux_signals.SIGUSR2: XNU_SIGUSR2,  # 12 -> 31
    16: XNU_SIGEMT,  # Linux SIGSTKFLT (16) <-> XNU SIGEMT (7)
    linux_signals.SIGCHLD: XNU_SIGCHLD,  # 17 -> 20
    linux_signals.SIGCONT: XNU_SIGCONT,  # 18 -> 19
    linux_signals.SIGSTOP: XNU_SIGSTOP,  # 19 -> 17
    20: XNU_SIGTSTP,  # Linux SIGTSTP (20) -> 18
    linux_signals.SIGURG: XNU_SIGURG,  # 23 -> 16
    29: XNU_SIGIO,  # Linux SIGIO/SIGPOLL (29) -> 23
    30: XNU_SIGINFO,  # Linux SIGPWR (30) <-> XNU SIGINFO (29)
    31: XNU_SIGSYS,  # Linux SIGSYS (31) -> XNU SIGSYS (12)
}

XNU_TO_LINUX: Dict[int, int] = {xnu: lnx for lnx, xnu in LINUX_TO_XNU.items()}


class SignalTranslator:
    """Installed as ``kernel.signal_translator`` on Cider/XNU kernels."""

    def to_xnu(self, linux_signum: int) -> int:
        return LINUX_TO_XNU.get(linux_signum, linux_signum)

    def to_linux(self, xnu_signum: int) -> int:
        return XNU_TO_LINUX.get(xnu_signum, xnu_signum)

    def prepare_delivery(
        self, kernel: "Kernel", thread: "KThread", info: "SigInfo"
    ) -> int:
        """Called on the delivery path; returns the signal number in the
        target thread's persona numbering and charges translation costs."""
        if thread.persona.name != "ios":
            return info.signum
        machine = kernel.machine
        # Translation of the signal information plus delivery of the
        # larger signal structure expected by iOS binaries (paper §6.2).
        machine.charge("signal_translate")
        machine.charge("signal_large_frame")
        return self.to_xnu(info.signum)
