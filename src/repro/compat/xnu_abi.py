"""The XNU kernel ABI, implemented on the domestic kernel.

"iOS apps can trap into the kernel in four different ways depending on
the system call being executed" (paper §4.1) — the four trap classes are
modelled exactly:

* **BSD/unix** syscalls: positive numbers, dispatched through the XNU BSD
  table.  Most are "a simple wrapper that maps arguments from XNU
  structures to Linux structures and then calls the Linux implementation"
  — our wrappers literally call the Linux handler functions.
* **Mach traps**: negative numbers, dispatched into the duct-taped Mach
  IPC / semaphore / I/O Kit subsystems.
* **machdep** traps (0x80000000 | n): TLS register manipulation.
* **diag** traps (0x60000000 | n): kdebug-style diagnostics.

Error convention: "many XNU syscalls return an error indication through
CPU flags where Linux would return a negative integer" — the ABI returns
``(value, carry_flag)`` pairs; libSystem decodes the carry flag.

On a Cider kernel every dispatch charges ``xnu_translate_syscall`` (the
+40% on a null syscall); the XNU-native personality (iPad mini) charges
``xnu_native_trap`` instead and applies the device's select quirk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..kernel import syscalls_linux as linux
from ..kernel.errno import EINVAL, ENOSYS, SyscallError
from ..kernel.select import do_select
from ..kernel.signals import SigAction
from ..persona.abi import DispatchTable, KernelABI

if TYPE_CHECKING:
    from ..kernel.kernel import Kernel
    from ..kernel.process import KThread

# -- XNU BSD syscall numbers --------------------------------------------------------
SYS_exit = 1
SYS_fork = 2
SYS_read = 3
SYS_write = 4
SYS_open = 5
SYS_close = 6
SYS_wait4 = 7
SYS_unlink = 10
SYS_sync = 36
SYS_rename = 128
SYS_fsync = 95
SYS_fdatasync = 187
SYS_execve = 59
SYS_getpid = 20
SYS_recvfrom = 29
SYS_accept = 30
SYS_getsockname = 32
SYS_kill = 37
SYS_getppid = 39
SYS_pipe = 42
SYS_sigaction = 46
SYS_ioctl = 54
SYS_select = 93
SYS_socket = 97
SYS_connect = 98
SYS_bind = 104
SYS_setsockopt = 105
SYS_listen = 106
SYS_getsockopt = 118
SYS_sendto = 133
SYS_shutdown = 134
SYS_socketpair = 135
SYS_mkdir = 136
SYS_rmdir = 137
SYS_getrlimit = 194
SYS_setrlimit = 195
SYS_getdirentries = 196
SYS_lseek = 199
SYS_posix_spawn = 244
SYS_psynch_mutexwait = 301
SYS_psynch_mutexdrop = 302
SYS_psynch_cvbroad = 303
SYS_psynch_cvsignal = 304
SYS_psynch_cvwait = 305
SYS_semwait_signal = 334  # what sleep(3) uses on XNU
SYS_stat64 = 338
SYS_bsdthread_create = 360
SYS_thread_selfid = 372
#: Cider's set_persona is reachable from the iOS persona too (§4.3).
SYS_set_persona = 983045

# -- Mach trap numbers (dispatched as negative numbers) --------------------------------
TRAP_mach_port_allocate = -16
TRAP_mach_port_allocate_set = -17  # simulation: portset allocation trap
TRAP_mach_port_destroy = -18
TRAP_mach_port_deallocate = -19
TRAP_mach_port_move_member = -20
TRAP_mach_port_insert_right = -21
TRAP_mach_reply_port = -26
TRAP_task_self = -28
TRAP_mach_msg = -31
TRAP_semaphore_signal = -33
TRAP_semaphore_signal_all = -34
TRAP_semaphore_wait = -36
TRAP_semaphore_timedwait = -38
TRAP_semaphore_create = -40  # simulation: create/destroy as traps
TRAP_semaphore_destroy = -41
TRAP_swtch_pri = -59
TRAP_task_get_bootstrap_port = -85  # stands in for task_get_special_port MIG
TRAP_host_set_bootstrap_port = -86  # stands in for host_set_special_port MIG
TRAP_iokit_user_client = -100

# mach_msg option bits.
MACH_SEND_MSG = 0x1
MACH_RCV_MSG = 0x2

# -- machdep / diag -------------------------------------------------------------------
MACHDEP_BASE = 0x80000000
MACHDEP_get_cthread_self = MACHDEP_BASE | 0
MACHDEP_set_cthread_self = MACHDEP_BASE | 3

DIAG_BASE = 0x60000000
DIAG_kdebug_trace = DIAG_BASE | 1


class XNUABI(KernelABI):
    """The foreign kernel ABI (translated on Cider, native on the iPad)."""

    def __init__(self, native: bool = False) -> None:
        self.native = native
        self.name = "xnu-native" if native else "xnu"
        # Per-dispatch cost, resolved to integer picoseconds once by the
        # kernel's flattener: "translating the syscall into the
        # corresponding Linux syscall" (paper §6.2, +40% on a null
        # syscall) on Cider, the native trap cost on the iPad mini.
        self.dispatch_cost_name = (
            "xnu_native_trap" if native else "xnu_translate_syscall"
        )
        self.bsd = DispatchTable("xnu-bsd")
        self.mach = DispatchTable("xnu-mach")
        self.machdep = DispatchTable("xnu-machdep")
        self.diag = DispatchTable("xnu-diag")
        # Built once — the old per-dispatch dict literal was measurable
        # on the trap-storm benchmark.
        self._tables_by_class = {
            "unix": self.bsd,
            "mach": self.mach,
            "machdep": self.machdep,
            "diag": self.diag,
        }
        _register_bsd(self.bsd, native)
        _register_mach(self.mach)
        _register_machdep(self.machdep)
        _register_diag(self.diag)

    def tables(self):
        # Trap numbers are disjoint across the four classes (BSD positive,
        # Mach negative, machdep/diag in high tagged ranges), so the
        # kernel may flatten them into one handler dict.
        return (self.bsd, self.mach, self.machdep, self.diag)

    # The four ways into the kernel.
    def classify_trap(self, trapno: int) -> str:
        if trapno < 0:
            return "mach"
        if trapno & MACHDEP_BASE:
            return "machdep"
        if trapno & DIAG_BASE:
            return "diag"
        return "unix"

    def _table_for(self, trap_class: str) -> DispatchTable:
        return self._tables_by_class[trap_class]

    def dispatch(
        self, kernel: "Kernel", thread: "KThread", trapno: int, args: tuple
    ) -> object:
        kernel.machine.charge(self.dispatch_cost_name)
        _name, handler = self._table_for(self.classify_trap(trapno)).lookup(
            trapno
        )
        return handler(kernel, thread, *args)

    # XNU error convention: (value, carry flag).
    def success(self, value: object) -> object:
        return value, False

    def failure(self, errno: int) -> object:
        return errno, True

    def number_of(self, name: str) -> int:
        for table in (self.bsd, self.mach, self.machdep, self.diag):
            try:
                return table.number_of(name)
            except KeyError:
                continue
        raise KeyError(name)


# -- BSD wrappers: XNU structs in, Linux implementation underneath ---------------------


def _mach(kernel: "Kernel"):
    subsystem = kernel.mach_subsystem
    if subsystem is None:
        raise SyscallError(ENOSYS, "Mach IPC not compiled in")
    return subsystem


def _psynch(kernel: "Kernel"):
    subsystem = kernel.psynch_subsystem
    if subsystem is None:
        raise SyscallError(ENOSYS, "pthread_support not compiled in")
    return subsystem


def _sema(kernel: "Kernel"):
    subsystem = getattr(kernel, "sema_subsystem", None)
    if subsystem is None:
        raise SyscallError(ENOSYS, "sync_sema not compiled in")
    return subsystem


def xnu_sigaction(kernel: "Kernel", thread: "KThread", signum: int, handler):
    """XNU sigaction: numbers arrive in XNU numbering; store the action
    Linux-numbered, tagged with the registering persona."""
    translator = kernel.signal_translator
    linux_signum = translator.to_linux(signum) if translator else signum
    try:
        previous = thread.process.signals.set_action(
            linux_signum, SigAction(handler=handler, persona=thread.persona.name)
        )
    except ValueError as exc:
        raise SyscallError(EINVAL, str(exc)) from None
    return previous.handler


def xnu_kill(kernel: "Kernel", thread: "KThread", pid: int, signum: int):
    """XNU kill: converts the XNU signal into the corresponding Linux
    signal so it can be delivered to any persona (paper §4.1)."""
    translator = kernel.signal_translator
    linux_signum = translator.to_linux(signum) if translator else signum
    return linux.sys_kill(kernel, thread, pid, linux_signum)


def xnu_wait4(kernel: "Kernel", thread: "KThread", pid: int = -1):
    return linux.sys_waitpid(kernel, thread, pid)


def xnu_posix_spawn(
    kernel: "Kernel",
    thread: "KThread",
    path: str,
    argv: Optional[List[str]] = None,
):
    return kernel.processes.do_posix_spawn(thread, path, argv)


def xnu_select_native_quirk(
    kernel: "Kernel",
    thread: "KThread",
    read_fds: List[int],
    write_fds: Optional[List[int]] = None,
    timeout_ns: Optional[float] = 0,
):
    """XNU's select: on real XNU hardware the fd scan degrades sharply and
    the lmbench test 'simply failed to complete for 250 file descriptors'
    (paper §6.2).  The failure threshold is a device quirk flag."""
    nfds = len(read_fds) + len(write_fds or [])
    if kernel.machine.profile.has_quirk("xnu_select_blowup") and nfds >= 250:
        raise SyscallError(EINVAL, "XNU select cannot handle 250 descriptors")
    return do_select(kernel, thread, read_fds, write_fds or [], timeout_ns)


def xnu_bsdthread_create(
    kernel: "Kernel", thread: "KThread", fn: Callable, name: str = "pthread"
):
    new_thread = kernel.processes.spawn_kthread(
        thread.process, fn, name=name, persona=thread.persona
    )
    return new_thread.tid


def xnu_thread_selfid(kernel: "Kernel", thread: "KThread"):
    return thread.tid


def xnu_semwait_signal(kernel: "Kernel", thread: "KThread", duration_ns: float):
    kernel.machine.scheduler.sleep(duration_ns)
    return 0


def xnu_getdirentries(kernel: "Kernel", thread: "KThread", fd: int):
    return linux.sys_getdents(kernel, thread, fd)


def _register_bsd(table: DispatchTable, native: bool) -> None:
    table.register(SYS_exit, "exit", linux.sys_exit)
    table.register(SYS_fork, "fork", linux.sys_fork)
    table.register(SYS_read, "read", linux.sys_read)
    table.register(SYS_write, "write", linux.sys_write)
    table.register(SYS_open, "open", linux.sys_open)
    table.register(SYS_close, "close", linux.sys_close)
    table.register(SYS_wait4, "wait4", xnu_wait4)
    table.register(SYS_unlink, "unlink", linux.sys_unlink)
    # The durable-storage sync family and rename are persona-agnostic VFS
    # work: one shared kernel implementation, two trap numbers (PR 5
    # pattern — the handler never looks at the calling convention).
    table.register(SYS_rename, "rename", linux.sys_rename)
    table.register(SYS_sync, "sync", linux.sys_sync)
    table.register(SYS_fsync, "fsync", linux.sys_fsync)
    table.register(SYS_fdatasync, "fdatasync", linux.sys_fdatasync)
    table.register(SYS_execve, "execve", linux.sys_execve)
    table.register(SYS_getpid, "getpid", linux.sys_getpid)
    table.register(SYS_accept, "accept", linux.sys_accept)
    table.register(SYS_kill, "kill", xnu_kill)
    table.register(SYS_getppid, "getppid", linux.sys_getppid)
    table.register(SYS_pipe, "pipe", linux.sys_pipe)
    table.register(SYS_sigaction, "sigaction", xnu_sigaction)
    table.register(SYS_ioctl, "ioctl", linux.sys_ioctl)
    table.register(SYS_select, "select", xnu_select_native_quirk)
    # The whole BSD socket family passes straight through to the Linux
    # handlers: XNU and Linux both descend from the BSD socket
    # abstraction, so network syscalls need no diplomat — one shared
    # implementation, with the XNU side paying only the per-dispatch
    # translation cost (asserted by tests/test_net.py).  This is why the
    # paper's network-dependent iOS apps run unmodified.
    table.register(SYS_socket, "socket", linux.sys_socket)
    table.register(SYS_connect, "connect", linux.sys_connect)
    table.register(SYS_bind, "bind", linux.sys_bind)
    table.register(SYS_listen, "listen", linux.sys_listen)
    table.register(SYS_sendto, "sendto", linux.sys_sendto)
    table.register(SYS_recvfrom, "recvfrom", linux.sys_recvfrom)
    table.register(SYS_setsockopt, "setsockopt", linux.sys_setsockopt)
    table.register(SYS_getsockopt, "getsockopt", linux.sys_getsockopt)
    table.register(SYS_getsockname, "getsockname", linux.sys_getsockname)
    table.register(SYS_shutdown, "shutdown", linux.sys_shutdown)
    table.register(SYS_socketpair, "socketpair", linux.sys_socketpair)
    table.register(SYS_mkdir, "mkdir", linux.sys_mkdir)
    table.register(SYS_rmdir, "rmdir", linux.sys_rmdir)
    table.register(SYS_getdirentries, "getdirentries", xnu_getdirentries)
    # rlimits share the Linux handlers directly: the structures they sync
    # (fd table, address space) are persona-independent kernel state, so
    # no diplomat is needed — the XNU ABI only re-encodes the result.
    table.register(SYS_getrlimit, "getrlimit", linux.sys_getrlimit)
    table.register(SYS_setrlimit, "setrlimit", linux.sys_setrlimit)
    table.register(SYS_lseek, "lseek", linux.sys_lseek)
    table.register(SYS_posix_spawn, "posix_spawn", xnu_posix_spawn)
    table.register(SYS_stat64, "stat64", linux.sys_stat)
    table.register(SYS_bsdthread_create, "bsdthread_create", xnu_bsdthread_create)
    table.register(SYS_thread_selfid, "thread_selfid", xnu_thread_selfid)
    table.register(SYS_semwait_signal, "semwait_signal", xnu_semwait_signal)
    table.register(
        SYS_psynch_mutexwait,
        "psynch_mutexwait",
        lambda k, t, addr: _psynch(k).psynch_mutexwait(t.process, addr),
    )
    table.register(
        SYS_psynch_mutexdrop,
        "psynch_mutexdrop",
        lambda k, t, addr: _psynch(k).psynch_mutexdrop(t.process, addr),
    )
    table.register(
        SYS_psynch_cvbroad,
        "psynch_cvbroad",
        lambda k, t, addr: _psynch(k).psynch_cvbroad(t.process, addr),
    )
    table.register(
        SYS_psynch_cvsignal,
        "psynch_cvsignal",
        lambda k, t, addr: _psynch(k).psynch_cvsignal(t.process, addr),
    )
    table.register(
        SYS_psynch_cvwait,
        "psynch_cvwait",
        lambda k, t, cv, mtx, timeout=None: _psynch(k).psynch_cvwait(
            t.process, cv, mtx, timeout
        ),
    )


# -- Mach traps -----------------------------------------------------------------------------


def _register_mach(table: DispatchTable) -> None:
    table.register(
        TRAP_mach_port_allocate,
        "mach_port_allocate",
        lambda k, t: _mach(k).mach_port_allocate(t.process),
    )
    table.register(
        TRAP_mach_port_allocate_set,
        "mach_port_allocate_set",
        lambda k, t: _mach(k).mach_port_allocate_set(t.process),
    )
    table.register(
        TRAP_mach_port_destroy,
        "mach_port_destroy",
        lambda k, t, name: _mach(k).mach_port_destroy(t.process, name),
    )
    table.register(
        TRAP_mach_port_deallocate,
        "mach_port_deallocate",
        lambda k, t, name: _mach(k).mach_port_deallocate(t.process, name),
    )
    table.register(
        TRAP_mach_port_move_member,
        "mach_port_move_member",
        lambda k, t, port, pset: _mach(k).mach_port_move_member(
            t.process, port, pset
        ),
    )
    table.register(
        TRAP_mach_reply_port,
        "mach_reply_port",
        lambda k, t: _mach(k).mach_port_allocate(t.process)[1],
    )
    table.register(
        TRAP_task_self,
        "task_self",
        lambda k, t: _mach(k).task_self(t.process),
    )
    table.register(TRAP_mach_msg, "mach_msg", _mach_msg_trap)
    table.register(
        TRAP_semaphore_create,
        "semaphore_create",
        lambda k, t, value=0: _sema(k).semaphore_create(t.process, value),
    )
    table.register(
        TRAP_semaphore_destroy,
        "semaphore_destroy",
        lambda k, t, sid: _sema(k).semaphore_destroy(t.process, sid),
    )
    table.register(
        TRAP_semaphore_signal,
        "semaphore_signal",
        lambda k, t, sid: _sema(k).semaphore_signal(t.process, sid),
    )
    table.register(
        TRAP_semaphore_signal_all,
        "semaphore_signal_all",
        lambda k, t, sid: _sema(k).semaphore_signal_all(t.process, sid),
    )
    table.register(
        TRAP_semaphore_wait,
        "semaphore_wait",
        lambda k, t, sid: _sema(k).semaphore_wait(t.process, sid),
    )
    table.register(
        TRAP_semaphore_timedwait,
        "semaphore_timedwait",
        lambda k, t, sid, timeout: _sema(k).semaphore_wait(
            t.process, sid, timeout
        ),
    )
    table.register(
        TRAP_swtch_pri,
        "swtch_pri",
        lambda k, t: k.machine.scheduler.yield_control(),
    )
    table.register(
        TRAP_task_get_bootstrap_port,
        "task_get_bootstrap_port",
        lambda k, t: _mach(k).task_get_bootstrap_port(t.process),
    )
    table.register(
        TRAP_host_set_bootstrap_port,
        "host_set_bootstrap_port",
        lambda k, t, name: _mach(k).host_set_bootstrap_port(t.process, name),
    )
    table.register(TRAP_iokit_user_client, "iokit_user_client", _iokit_trap)


def _mach_msg_trap(
    kernel: "Kernel",
    thread: "KThread",
    option: int,
    name: int,
    msg: object = None,
    reply_name: int = 0,
    timeout_ns: Optional[float] = None,
):
    """mach_msg_trap: option bits select send and/or receive halves."""
    subsystem = _mach(kernel)
    task = thread.process
    if option & MACH_SEND_MSG and option & MACH_RCV_MSG:
        return subsystem.mach_msg_rpc(task, name, msg, timeout_ns)
    if option & MACH_SEND_MSG:
        return subsystem.mach_msg_send(task, name, msg, reply_name, timeout_ns)
    if option & MACH_RCV_MSG:
        return subsystem.mach_msg_receive(task, name, timeout_ns)
    raise SyscallError(EINVAL, "mach_msg: no option bits")


def _iokit_trap(
    kernel: "Kernel", thread: "KThread", operation: str, *args: object
):
    """iokit_user_client_trap: iOS user space reaches I/O Kit through
    opaque Mach IPC; the round trip is charged as a send+receive."""
    iokit = kernel.iokit
    if iokit is None:
        raise SyscallError(ENOSYS, "I/O Kit not compiled in")
    machine = kernel.machine
    machine.charge("mach_msg_send")
    machine.charge("mach_msg_receive")
    task = thread.process
    if operation == "get_matching_service":
        return iokit.get_matching_service(*args)
    if operation == "get_property":
        return iokit.get_property(*args)
    if operation == "open":
        return iokit.service_open(task, *args)
    if operation == "call_method":
        return iokit.connect_call_method(task, *args)
    if operation == "close":
        return iokit.service_close(task, *args)
    raise SyscallError(EINVAL, f"iokit operation {operation!r}")


# -- machdep & diag ----------------------------------------------------------------------------


def _register_machdep(table: DispatchTable) -> None:
    def set_cthread_self(kernel, thread, value):
        thread.tls().set("self", value)
        return 0

    def get_cthread_self(kernel, thread):
        return thread.tls().get("self")

    table.register(
        MACHDEP_set_cthread_self, "thread_fast_set_cthread_self", set_cthread_self
    )
    table.register(
        MACHDEP_get_cthread_self, "thread_get_cthread_self", get_cthread_self
    )


def _register_diag(table: DispatchTable) -> None:
    def kdebug_trace(kernel, thread, *args):
        kernel.machine.emit("xnu", "kdebug", args=args)
        return 0

    table.register(DIAG_kdebug_trace, "kdebug_trace", kdebug_trace)
