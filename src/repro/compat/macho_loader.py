"""The Mach-O binary loader for the Linux kernel.

Registered on Cider (and XNU-native) kernels alongside the ELF handler.
When a Mach-O binary is loaded "the kernel tags the current thread with an
iOS persona, used in all interactions with user space" (paper §4.1); the
loader then invokes the user-space dynamic linker, dyld, exactly as XNU's
Mach-O loader does.

App Store binaries are encrypted (LC_ENCRYPTION_INFO); the loader refuses
them — they must first pass through the decryption path of
:mod:`repro.cider.installer` (paper §6.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..binfmt import Arch, BinaryFormat, BinaryImage
from ..kernel.errno import ENOEXEC, SyscallError
from ..kernel.loader import BinfmtHandler, LibcFactory, StartRoutine
from ..ios.dyld import Dyld

if TYPE_CHECKING:
    from ..kernel.kernel import Kernel
    from ..kernel.process import KThread, Process, UserContext


class MachOLoader(BinfmtHandler):
    """binfmt handler for Mach-O executables."""

    format = BinaryFormat.MACHO

    def __init__(self, libc_factory: LibcFactory, dyld: Dyld) -> None:
        self._libc_factory = libc_factory
        self.dyld = dyld

    def matches(self, image: BinaryImage) -> bool:
        return image.format is BinaryFormat.MACHO

    def load(
        self,
        kernel: "Kernel",
        process: "Process",
        thread: "KThread",
        image: BinaryImage,
        argv: List[str],
    ) -> StartRoutine:
        if image.encrypted:
            raise SyscallError(
                ENOEXEC,
                f"{image.name}: encrypted App Store binary (decrypt first)",
            )
        if image.arch is not Arch.ARMV7:
            raise SyscallError(ENOEXEC, f"{image.name}: wrong architecture")

        machine = kernel.machine
        machine.charge("macho_load_base")
        machine.charge("macho_load_per_mb", image.vm_size_mb)
        for seg in image.segments:
            process.address_space.map(
                f"{image.name}:{seg.name}", seg.size_bytes, seg.writable
            )

        # Tag the thread with the iOS persona (inherited on fork/clone).
        thread.persona = kernel.personas.get("ios")
        thread.tls()  # materialise the iOS TLS area

        process.binary = image
        process.libc_factory = self._libc_factory
        dyld = self.dyld

        def start(ctx: "UserContext") -> int:
            return dyld.bootstrap(ctx, image, argv)

        return start
