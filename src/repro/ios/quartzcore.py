"""QuartzCore-lite (CoreAnimation): the iOS layer tree renderer.

UIKit views are backed by CALayers; QuartzCore rasterises the layer tree
into an IOSurface using CoreGraphics and presents through OpenGL ES /
EAGL (paper §5.3 lists WebKit, UIKit and CoreAnimation as the clients of
the OpenGL ES and IOSurface libraries).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from ..kernel.process import UserContext
    from .iosurface import IOSurface


class CALayer:
    """One layer: geometry, background, optional text contents."""

    def __init__(
        self,
        x: float = 0,
        y: float = 0,
        width: float = 0,
        height: float = 0,
        background: str = " ",
    ) -> None:
        self.x = x
        self.y = y
        self.width = width
        self.height = height
        self.background = background
        self.text: Optional[str] = None
        self.hidden = False
        self.sublayers: List["CALayer"] = []

    def add_sublayer(self, layer: "CALayer") -> None:
        self.sublayers.append(layer)

    def layer_count(self) -> int:
        return 1 + sum(child.layer_count() for child in self.sublayers)


def CARenderLayerTree(
    ctx: "UserContext", root: CALayer, surface: "IOSurface"
) -> int:
    """Rasterise ``root`` into ``surface``; returns layers rendered."""
    from .coregraphics import (
        CGBitmapContextCreate,
        CGContextFillRect,
        CGContextShowText,
    )

    canvas = CGBitmapContextCreate(ctx, surface.base_address())
    rendered = _render(ctx, canvas, root, 0.0, 0.0)
    return rendered


def _render(ctx, canvas, layer: CALayer, ox: float, oy: float) -> int:
    from .coregraphics import CGContextFillRect, CGContextShowText

    if layer.hidden:
        return 0
    x, y = ox + layer.x, oy + layer.y
    count = 1
    if layer.background != " ":
        CGContextFillRect(ctx, canvas, x, y, layer.width, layer.height, layer.background)
    if layer.text:
        CGContextShowText(ctx, canvas, x + 4, y + 4, layer.text)
    for sublayer in layer.sublayers:
        count += _render(ctx, canvas, sublayer, x, y)
    return count


def quartzcore_exports() -> Dict[str, object]:
    return {
        "_CARenderLayerTree": CARenderLayerTree,
    }
