"""Foundation-lite: the slice of Foundation/CoreFoundation apps touch.

Provides NSLog (to the system log socket via syslogd-less fallback),
absolute time, user-defaults-style plist storage under the overlay FS
paths iOS apps expect (/Documents, /Library/Preferences), and the
notification bridge to notifyd.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:
    from ..kernel.process import UserContext

LIB_STATE_KEY = "Foundation"


def NSLog(ctx: "UserContext", message: str) -> None:
    """Format and ship a log line to syslogd (falling back to a local
    trace event when the logger is not up yet)."""
    ctx.machine.charge("native_op", 40 + len(message))
    ctx.machine.emit("nslog", ctx.process.name, message=message)
    from .services import syslog_send

    syslog_send(ctx, message)


def CFAbsoluteTimeGetCurrent(ctx: "UserContext") -> float:
    ctx.machine.charge("native_op", 4)
    return ctx.machine.now_ns / 1e9


def NSHomeDirectory(ctx: "UserContext") -> str:
    ctx.machine.charge("native_op", 8)
    return "/var/mobile"


def NSDocumentsDirectory(ctx: "UserContext") -> str:
    ctx.machine.charge("native_op", 8)
    return "/Documents"


def NSUserDefaults_set(ctx: "UserContext", key: str, value: object) -> None:
    """Persist a preference into Library/Preferences (overlay FS)."""
    state = ctx.lib_state(LIB_STATE_KEY).setdefault("defaults", {})
    state[key] = value
    libc = ctx.libc
    fd = libc.creat(f"/Library/Preferences/{ctx.process.name}.plist")
    if fd != -1:
        payload = repr(state).encode()
        libc.write(fd, payload)
        libc.close(fd)


def NSUserDefaults_get(
    ctx: "UserContext", key: str, default: object = None
) -> object:
    state = ctx.lib_state(LIB_STATE_KEY).setdefault("defaults", {})
    return state.get(key, default)


def foundation_exports() -> Dict[str, object]:
    return {
        "_NSLog": NSLog,
        "_CFAbsoluteTimeGetCurrent": CFAbsoluteTimeGetCurrent,
        "_NSHomeDirectory": NSHomeDirectory,
        "_NSDocumentsDirectory": NSDocumentsDirectory,
        "_NSUserDefaults_set": NSUserDefaults_set,
        "_NSUserDefaults_get": NSUserDefaults_get,
    }
