"""The eventpump: Cider's input bridge thread.

"Cider creates a new thread in each iOS app to act as a bridge between
the Android input system and the Mach IPC port expecting input events.
This thread, the eventpump, listens for events from the Android
CiderPress app on a BSD socket.  It then pumps those events into the iOS
app via Mach IPC." (paper §5.2)

Wire format on the socket: 4-byte big-endian length followed by a pickled
event dictionary (the simulation's stand-in for the packed event structs
CiderPress would write).  Socket EOF means CiderPress is gone: the pump
delivers a terminate lifecycle event and exits.
"""

from __future__ import annotations

import pickle
import struct
from typing import TYPE_CHECKING, Optional

from ..xnu.ipc import MachMessage
from .uikit import EVENT_MSG_ACCEL, EVENT_MSG_LIFECYCLE, EVENT_MSG_TOUCH

if TYPE_CHECKING:
    from ..kernel.process import UserContext

_KIND_TO_MSG = {
    "touch": EVENT_MSG_TOUCH,
    "accel": EVENT_MSG_ACCEL,
    "lifecycle": EVENT_MSG_LIFECYCLE,
}


def encode_event(event: dict) -> bytes:
    """CiderPress-side framing helper."""
    payload = pickle.dumps(event)
    return struct.pack(">I", len(payload)) + payload


def _read_exact(libc, fd: int, nbytes: int) -> Optional[bytes]:
    chunks = b""
    while len(chunks) < nbytes:
        data = libc.read(fd, nbytes - len(chunks))
        if data in (-1, b"", None):
            return None
        chunks += data
    return chunks


def eventpump_body(ctx: "UserContext", socket_path: str, event_port: int) -> int:
    """The pump thread: socket -> Mach IPC."""
    libc = ctx.libc
    fd = libc.socket()
    if libc.connect(fd, socket_path) == -1:
        return -1
    machine = ctx.machine
    pumped = 0
    while True:
        header = _read_exact(libc, fd, 4)
        if header is None:
            break
        (length,) = struct.unpack(">I", header)
        payload = _read_exact(libc, fd, length)
        if payload is None:
            break
        event = pickle.loads(payload)
        machine.charge("input_event_route")
        msg_id = _KIND_TO_MSG.get(event.get("type", "touch"), EVENT_MSG_TOUCH)
        libc.mach_msg_send(event_port, MachMessage(msg_id, body=event))
        pumped += 1
        machine.emit("eventpump", event.get("type", "touch"))
    # CiderPress hung up: tell the app to terminate.
    libc.mach_msg_send(
        event_port,
        MachMessage(EVENT_MSG_LIFECYCLE, body={"action": "terminate"}),
    )
    libc.close(fd)
    return pumped


def start_eventpump(
    ctx: "UserContext", socket_path: str, event_port: int
):
    """Spawn the bridge thread inside the current (iOS) process."""
    return ctx.libc.pthread_create(
        lambda thread_ctx: eventpump_body(thread_ctx, socket_path, event_port),
        name="eventpump",
    )
