"""iOS background user-level services: launchd, configd, notifyd.

"Background user-level services such as launchd, configd, and notifyd
were copied from an iOS device" (paper §3) — Cider runs them unmodified
over its kernel ABI.  launchd boots the Mach IPC service namespace
(the bootstrap port) and spawns the other daemons with posix_spawn;
configd serves configuration keys; notifyd is the asynchronous
notification server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from ..compat.signals import XNU_SIGCHLD
from ..xnu.ipc import (
    KERN_SUCCESS,
    MACH_MSG_SUCCESS,
    MACH_MSG_TYPE_MAKE_SEND,
    MACH_PORT_NULL,
    MACH_RCV_PORT_DIED,
    MachMessage,
)

if TYPE_CHECKING:
    from ..kernel.process import UserContext

CONFIGD_SERVICE = "com.apple.SystemConfiguration.configd"
NOTIFYD_SERVICE = "com.apple.system.notification_center"
SYSLOGD_SERVICE = "com.apple.system.logger"

#: launchd keep-alive jobs: service binary -> bootstrap name.
KEEP_ALIVE_SERVICES = {
    "/usr/libexec/configd": CONFIGD_SERVICE,
    "/usr/libexec/notifyd": NOTIFYD_SERVICE,
    "/usr/libexec/syslogd": SYSLOGD_SERVICE,
}

#: Supervision policy: exponential backoff starting here, doubling per
#: restart, until the throttle limit marks the service dead.
RESTART_BACKOFF_BASE_NS = 10_000_000.0  # 10 ms
RESTART_THROTTLE_LIMIT = 5


def launchd_main(ctx: "UserContext", argv: List[str]) -> int:
    """PID-1 of the iOS user space: bootstrap server, service spawner,
    and keep-alive supervisor.

    Supervision: a SIGCHLD handler reaps exited services; keep-alive jobs
    are respawned by a helper pthread after an exponential backoff
    (10 ms · 2^(restarts−1)); after :data:`RESTART_THROTTLE_LIMIT`
    restarts the job is throttled — marked dead, never respawned — and a
    ``launchd:service_throttled`` trace event records it.
    """
    libc = ctx.libc
    kr, bootstrap_port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    libc.host_set_bootstrap_port(bootstrap_port)
    ctx.machine.emit("launchd", "bootstrap_ready")
    if ctx.machine.boot_generation:
        # Post-reboot boot: the supervisor is restarting every keep-alive
        # job from scratch — the recovery log and the re-supervision
        # tests key off this event.
        ctx.machine.emit(
            "launchd", "resupervise",
            generation=ctx.machine.boot_generation,
        )

    supervise = "--no-keepalive" not in argv
    # Keep-alive job table: the stock iOS daemons plus whatever the
    # system builder registered (e.g. the in-sim HTTP origin).  Copied
    # here so per-boot additions never mutate the module global.
    keep_alive: Dict[str, str] = dict(KEEP_ALIVE_SERVICES)
    keep_alive.update(
        getattr(ctx.machine.kernel, "launchd_extra_services", {}) or {}
    )
    jobs: Dict[int, str] = {}  # live pid -> service binary
    restarts: Dict[str, int] = {}
    throttled: Set[str] = set()
    registry: Dict[str, int] = {}
    # Exposed for inspection (tests, ps-style tooling) via lib_state.
    state = ctx.lib_state("launchd")
    state["jobs"] = jobs
    state["restarts"] = restarts
    state["throttled"] = throttled
    state["registry"] = registry

    def spawn_service(spawn_ctx: "UserContext", path: str) -> None:
        pid = spawn_ctx.libc.posix_spawn(path)
        if isinstance(pid, int) and pid > 0:
            jobs[pid] = path
            spawn_ctx.machine.emit(
                "launchd", "service_start", path=path, pid=pid
            )

    def respawn_later(path: str, backoff_ns: float) -> None:
        def respawner(rctx: "UserContext") -> int:
            rctx.libc.sleep_ns(backoff_ns)
            if path not in throttled:
                spawn_service(rctx, path)
            return 0

        libc.pthread_create(
            respawner, name=f"respawn:{path.rsplit('/', 1)[-1]}"
        )

    def sigchld_handler(hctx: "UserContext", signum: int, info: object) -> None:
        child_pid = getattr(info, "sender_pid", 0)
        path = jobs.pop(child_pid, None)
        if path is None:
            return
        # The child is guaranteed zombie by SIGCHLD time: reap precisely it.
        result = hctx.libc.waitpid(child_pid)
        code = result[1] if isinstance(result, tuple) else -1
        hctx.machine.emit(
            "launchd", "service_exit", path=path, pid=child_pid, code=code
        )
        # The dead service's port right is useless now: drop it from the
        # bootstrap namespace so clients see "not registered" (and retry)
        # instead of a dead name, until the respawn re-registers.
        registry.pop(keep_alive.get(path, ""), None)
        if not supervise or path not in keep_alive:
            return
        count = restarts.get(path, 0) + 1
        restarts[path] = count
        if count > RESTART_THROTTLE_LIMIT:
            throttled.add(path)
            hctx.machine.emit(
                "launchd", "service_throttled", path=path, restarts=count
            )
            return
        backoff_ns = RESTART_BACKOFF_BASE_NS * (2 ** (count - 1))
        hctx.machine.emit(
            "launchd",
            "service_restart",
            path=path,
            restarts=count,
            backoff_ns=backoff_ns,
        )
        # Causal follows-from edge: the respawn is a consequence of the
        # trace that killed the service, but not part of that request.
        obs = hctx.machine.obs
        if obs is not None and obs.causal is not None:
            obs.causal.follow(f"launchd respawn {path}")
        respawn_later(path, backoff_ns)

    libc.signal(XNU_SIGCHLD, sigchld_handler)

    # Start the standard Mach IPC services (paper §2: "launchd starts
    # Mach IPC services such as configd ... notifyd").
    if "--no-services" not in argv:
        for service_path in keep_alive:
            spawn_service(ctx, service_path)

    while True:
        code, msg = libc.mach_msg_receive(bootstrap_port)
        if code == MACH_RCV_PORT_DIED:
            return 0  # our own bootstrap port died: nothing left to serve
        if code != MACH_MSG_SUCCESS or msg is None:
            continue  # transient failure (injected fault): keep serving
        body = msg.body if isinstance(msg.body, dict) else {}
        op = body.get("op")
        if op == "register" and msg.reply_port_name != MACH_PORT_NULL:
            # The service's port right arrived in the header reply slot.
            # Re-registration (a respawned service) replaces the old —
            # possibly dead — right, which is what heals clients.
            registry[body.get("name", "")] = msg.reply_port_name
            ctx.machine.emit("launchd", "register", service=body.get("name"))
        elif op == "lookup" and msg.reply_port_name != MACH_PORT_NULL:
            service_port = registry.get(body.get("name", ""), MACH_PORT_NULL)
            reply = MachMessage(msg.msg_id + 100, body={"found": bool(service_port)})
            reply.body_right_name = service_port
            libc.mach_msg_send(msg.reply_port_name, reply)


def configd_main(ctx: "UserContext", argv: List[str]) -> int:
    """The system configuration daemon: a key/value Mach service."""
    libc = ctx.libc
    kr, port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    if libc.bootstrap_register(CONFIGD_SERVICE, port) != 0:
        return 1
    store: Dict[str, object] = {
        "Model": "Cider",
        "UserAssignedName": "cider-device",
    }
    while True:
        code, msg = libc.mach_msg_receive(port)
        if code == MACH_RCV_PORT_DIED:
            return 0
        if code != MACH_MSG_SUCCESS or msg is None:
            continue  # transient (injected) receive failure
        body = msg.body if isinstance(msg.body, dict) else {}
        op = body.get("op")
        if op == "set":
            store[body.get("key", "")] = body.get("value")
        if msg.reply_port_name != MACH_PORT_NULL:
            value = store.get(body.get("key", "")) if op in ("get", "set") else None
            libc.mach_msg_send(
                msg.reply_port_name,
                MachMessage(msg.msg_id + 100, body={"value": value}),
            )


def notifyd_main(ctx: "UserContext", argv: List[str]) -> int:
    """The asynchronous notification server (notify(3))."""
    libc = ctx.libc
    kr, port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    if libc.bootstrap_register(NOTIFYD_SERVICE, port) != 0:
        return 1
    registrations: Dict[str, List[int]] = {}
    while True:
        code, msg = libc.mach_msg_receive(port)
        if code == MACH_RCV_PORT_DIED:
            return 0
        if code != MACH_MSG_SUCCESS or msg is None:
            continue  # transient (injected) receive failure
        body = msg.body if isinstance(msg.body, dict) else {}
        op = body.get("op")
        name = body.get("name", "")
        if op == "register" and msg.reply_port_name != MACH_PORT_NULL:
            registrations.setdefault(name, []).append(msg.reply_port_name)
        elif op == "post":
            for client_port in registrations.get(name, []):
                libc.mach_msg_send(
                    client_port,
                    MachMessage(0x2001, body={"notification": name}),
                )
            if msg.reply_port_name != MACH_PORT_NULL:
                libc.mach_msg_send(
                    msg.reply_port_name,
                    MachMessage(
                        msg.msg_id + 100,
                        body={"delivered": len(registrations.get(name, []))},
                    ),
                )


def syslogd_main(ctx: "UserContext", argv: List[str]) -> int:
    """The system log daemon: collects asl messages into /var/log."""
    libc = ctx.libc
    kr, port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    if libc.bootstrap_register(SYSLOGD_SERVICE, port) != 0:
        return 1
    log_fd = libc.creat("/var/log/asl.log")
    lines = 0
    while True:
        code, msg = libc.mach_msg_receive(port)
        if code == MACH_RCV_PORT_DIED:
            return 0
        if code != MACH_MSG_SUCCESS or msg is None:
            continue  # transient (injected) receive failure
        body = msg.body if isinstance(msg.body, dict) else {}
        sender = body.get("sender", "?")
        text = body.get("message", "")
        libc.write(log_fd, f"<{sender}> {text}\n".encode())
        lines += 1
        if msg.reply_port_name != MACH_PORT_NULL:
            libc.mach_msg_send(
                msg.reply_port_name,
                MachMessage(msg.msg_id + 100, body={"logged": lines}),
            )


def syslog_send(ctx: "UserContext", message: str) -> int:
    """asl client: ship one log line to syslogd (what NSLog does)."""
    libc = ctx.libc
    service = libc.bootstrap_look_up(SYSLOGD_SERVICE)
    if service == MACH_PORT_NULL:
        return -1
    code = libc.mach_msg_send(
        service,
        MachMessage(
            0x3005,
            body={"sender": ctx.process.name, "message": message},
        ),
    )
    return 0 if code == MACH_MSG_SUCCESS else -1


# -- client helpers (what libnotify / SCDynamicStore wrappers do) ------------------


def lookup_service_retry(
    ctx: "UserContext",
    service_name: str,
    attempts: int = 5,
    backoff_ns: float = 1_000_000.0,
    timeout_ns: float = 50_000_000.0,
) -> int:
    """Bounded-backoff bootstrap lookup.

    A client whose service just crashed sees either MACH_PORT_NULL (not
    yet re-registered) or a dead name on first use; retrying the lookup
    with exponential backoff rides out launchd's restart window.  Gives
    up — returning MACH_PORT_NULL — after ``attempts`` tries, so a
    throttled-dead service yields a clean failure, not a hang.
    """
    libc = ctx.libc
    delay = backoff_ns
    for attempt in range(attempts):
        port = libc.bootstrap_look_up(service_name, timeout_ns=timeout_ns)
        if port != MACH_PORT_NULL:
            return port
        ctx.machine.emit(
            "bootstrap", "lookup_retry", service=service_name, attempt=attempt + 1
        )
        libc.sleep_ns(delay)
        delay *= 2
    return MACH_PORT_NULL


def configd_get(ctx: "UserContext", key: str) -> object:
    libc = ctx.libc
    port = libc.bootstrap_look_up(CONFIGD_SERVICE)
    if port == MACH_PORT_NULL:
        return None
    code, reply = libc.mach_msg_rpc(
        port, MachMessage(0x3001, body={"op": "get", "key": key})
    )
    if code != MACH_MSG_SUCCESS or reply is None:
        return None
    return reply.body.get("value") if isinstance(reply.body, dict) else None


def configd_set(ctx: "UserContext", key: str, value: object) -> object:
    libc = ctx.libc
    port = libc.bootstrap_look_up(CONFIGD_SERVICE)
    if port == MACH_PORT_NULL:
        return None
    code, reply = libc.mach_msg_rpc(
        port, MachMessage(0x3002, body={"op": "set", "key": key, "value": value})
    )
    return reply.body.get("value") if reply and isinstance(reply.body, dict) else None


def notify_register(ctx: "UserContext", name: str) -> int:
    """Register interest; returns the port to receive notifications on."""
    libc = ctx.libc
    service = libc.bootstrap_look_up(NOTIFYD_SERVICE)
    if service == MACH_PORT_NULL:
        return MACH_PORT_NULL
    kr, my_port = libc.mach_port_allocate()
    msg = MachMessage(
        0x3003,
        body={"op": "register", "name": name},
        reply_disposition=MACH_MSG_TYPE_MAKE_SEND,
    )
    libc.mach_msg_send(service, msg, my_port)
    return my_port


def notify_post(ctx: "UserContext", name: str) -> int:
    libc = ctx.libc
    service = libc.bootstrap_look_up(NOTIFYD_SERVICE)
    if service == MACH_PORT_NULL:
        return -1
    code, reply = libc.mach_msg_rpc(
        service, MachMessage(0x3004, body={"op": "post", "name": name})
    )
    if code != MACH_MSG_SUCCESS or reply is None:
        return -1
    return reply.body.get("delivered", 0) if isinstance(reply.body, dict) else 0
