"""iOS background user-level services: launchd, configd, notifyd.

"Background user-level services such as launchd, configd, and notifyd
were copied from an iOS device" (paper §3) — Cider runs them unmodified
over its kernel ABI.  launchd boots the Mach IPC service namespace
(the bootstrap port) and spawns the other daemons with posix_spawn;
configd serves configuration keys; notifyd is the asynchronous
notification server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..xnu.ipc import (
    KERN_SUCCESS,
    MACH_MSG_SUCCESS,
    MACH_MSG_TYPE_MAKE_SEND,
    MACH_PORT_NULL,
    MachMessage,
)

if TYPE_CHECKING:
    from ..kernel.process import UserContext

CONFIGD_SERVICE = "com.apple.SystemConfiguration.configd"
NOTIFYD_SERVICE = "com.apple.system.notification_center"
SYSLOGD_SERVICE = "com.apple.system.logger"


def launchd_main(ctx: "UserContext", argv: List[str]) -> int:
    """PID-1 of the iOS user space: bootstrap server + service spawner."""
    libc = ctx.libc
    kr, bootstrap_port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    libc.host_set_bootstrap_port(bootstrap_port)
    ctx.machine.emit("launchd", "bootstrap_ready")

    # Start the standard Mach IPC services (paper §2: "launchd starts
    # Mach IPC services such as configd ... notifyd").
    if "--no-services" not in argv:
        libc.posix_spawn("/usr/libexec/configd")
        libc.posix_spawn("/usr/libexec/notifyd")
        libc.posix_spawn("/usr/libexec/syslogd")

    registry: Dict[str, int] = {}
    while True:
        code, msg = libc.mach_msg_receive(bootstrap_port)
        if code != MACH_MSG_SUCCESS or msg is None:
            return 0
        body = msg.body if isinstance(msg.body, dict) else {}
        op = body.get("op")
        if op == "register" and msg.reply_port_name != MACH_PORT_NULL:
            # The service's port right arrived in the header reply slot.
            registry[body.get("name", "")] = msg.reply_port_name
            ctx.machine.emit("launchd", "register", service=body.get("name"))
        elif op == "lookup" and msg.reply_port_name != MACH_PORT_NULL:
            service_port = registry.get(body.get("name", ""), MACH_PORT_NULL)
            reply = MachMessage(msg.msg_id + 100, body={"found": bool(service_port)})
            reply.body_right_name = service_port
            libc.mach_msg_send(msg.reply_port_name, reply)


def configd_main(ctx: "UserContext", argv: List[str]) -> int:
    """The system configuration daemon: a key/value Mach service."""
    libc = ctx.libc
    kr, port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    if libc.bootstrap_register(CONFIGD_SERVICE, port) != 0:
        return 1
    store: Dict[str, object] = {
        "Model": "Cider",
        "UserAssignedName": "cider-device",
    }
    while True:
        code, msg = libc.mach_msg_receive(port)
        if code != MACH_MSG_SUCCESS or msg is None:
            return 0
        body = msg.body if isinstance(msg.body, dict) else {}
        op = body.get("op")
        if op == "set":
            store[body.get("key", "")] = body.get("value")
        if msg.reply_port_name != MACH_PORT_NULL:
            value = store.get(body.get("key", "")) if op in ("get", "set") else None
            libc.mach_msg_send(
                msg.reply_port_name,
                MachMessage(msg.msg_id + 100, body={"value": value}),
            )


def notifyd_main(ctx: "UserContext", argv: List[str]) -> int:
    """The asynchronous notification server (notify(3))."""
    libc = ctx.libc
    kr, port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    if libc.bootstrap_register(NOTIFYD_SERVICE, port) != 0:
        return 1
    registrations: Dict[str, List[int]] = {}
    while True:
        code, msg = libc.mach_msg_receive(port)
        if code != MACH_MSG_SUCCESS or msg is None:
            return 0
        body = msg.body if isinstance(msg.body, dict) else {}
        op = body.get("op")
        name = body.get("name", "")
        if op == "register" and msg.reply_port_name != MACH_PORT_NULL:
            registrations.setdefault(name, []).append(msg.reply_port_name)
        elif op == "post":
            for client_port in registrations.get(name, []):
                libc.mach_msg_send(
                    client_port,
                    MachMessage(0x2001, body={"notification": name}),
                )
            if msg.reply_port_name != MACH_PORT_NULL:
                libc.mach_msg_send(
                    msg.reply_port_name,
                    MachMessage(
                        msg.msg_id + 100,
                        body={"delivered": len(registrations.get(name, []))},
                    ),
                )


def syslogd_main(ctx: "UserContext", argv: List[str]) -> int:
    """The system log daemon: collects asl messages into /var/log."""
    libc = ctx.libc
    kr, port = libc.mach_port_allocate()
    if kr != KERN_SUCCESS:
        return 1
    if libc.bootstrap_register(SYSLOGD_SERVICE, port) != 0:
        return 1
    log_fd = libc.creat("/var/log/asl.log")
    lines = 0
    while True:
        code, msg = libc.mach_msg_receive(port)
        if code != MACH_MSG_SUCCESS or msg is None:
            return 0
        body = msg.body if isinstance(msg.body, dict) else {}
        sender = body.get("sender", "?")
        text = body.get("message", "")
        libc.write(log_fd, f"<{sender}> {text}\n".encode())
        lines += 1
        if msg.reply_port_name != MACH_PORT_NULL:
            libc.mach_msg_send(
                msg.reply_port_name,
                MachMessage(msg.msg_id + 100, body={"logged": lines}),
            )


def syslog_send(ctx: "UserContext", message: str) -> int:
    """asl client: ship one log line to syslogd (what NSLog does)."""
    libc = ctx.libc
    service = libc.bootstrap_look_up(SYSLOGD_SERVICE)
    if service == MACH_PORT_NULL:
        return -1
    code = libc.mach_msg_send(
        service,
        MachMessage(
            0x3005,
            body={"sender": ctx.process.name, "message": message},
        ),
    )
    return 0 if code == MACH_MSG_SUCCESS else -1


# -- client helpers (what libnotify / SCDynamicStore wrappers do) ------------------


def configd_get(ctx: "UserContext", key: str) -> object:
    libc = ctx.libc
    port = libc.bootstrap_look_up(CONFIGD_SERVICE)
    if port == MACH_PORT_NULL:
        return None
    code, reply = libc.mach_msg_rpc(
        port, MachMessage(0x3001, body={"op": "get", "key": key})
    )
    if code != MACH_MSG_SUCCESS or reply is None:
        return None
    return reply.body.get("value") if isinstance(reply.body, dict) else None


def configd_set(ctx: "UserContext", key: str, value: object) -> object:
    libc = ctx.libc
    port = libc.bootstrap_look_up(CONFIGD_SERVICE)
    if port == MACH_PORT_NULL:
        return None
    code, reply = libc.mach_msg_rpc(
        port, MachMessage(0x3002, body={"op": "set", "key": key, "value": value})
    )
    return reply.body.get("value") if reply and isinstance(reply.body, dict) else None


def notify_register(ctx: "UserContext", name: str) -> int:
    """Register interest; returns the port to receive notifications on."""
    libc = ctx.libc
    service = libc.bootstrap_look_up(NOTIFYD_SERVICE)
    if service == MACH_PORT_NULL:
        return MACH_PORT_NULL
    kr, my_port = libc.mach_port_allocate()
    msg = MachMessage(
        0x3003,
        body={"op": "register", "name": name},
        reply_disposition=MACH_MSG_TYPE_MAKE_SEND,
    )
    libc.mach_msg_send(service, msg, my_port)
    return my_port


def notify_post(ctx: "UserContext", name: str) -> int:
    libc = ctx.libc
    service = libc.bootstrap_look_up(NOTIFYD_SERVICE)
    if service == MACH_PORT_NULL:
        return -1
    code, reply = libc.mach_msg_rpc(
        service, MachMessage(0x3004, body={"op": "post", "name": name})
    )
    if code != MACH_MSG_SUCCESS or reply is None:
        return -1
    return reply.body.get("delivered", 0) if isinstance(reply.body, dict) else 0
