"""Sample iOS applications — the cast of the paper's Figure 4.

Three UIKit apps in the spirit of the ones the authors demonstrate:

* **Calculator Pro** — "one of the top three free utilities for iPad,
  displaying a banner ad via the iAd framework": a keypad, a display
  label, and an iAd banner view.
* **Papers** — "highlighting text in a PDF": a document view with pan
  scrolling, pinch-to-zoom, and tap-to-highlight.
* **Stocks** — standing in for the unencrypted iOS *system* apps, and a
  Mach IPC client: it reads device configuration from configd.

Each ships as an (optionally encrypted) `.ipa` via the builders at the
bottom, ready for the §6.1 decrypt→install→shortcut pipeline.
"""

from __future__ import annotations

from typing import List, Optional

from ..binfmt import macho_executable
from ..cider.installer import IpaPackage
from .uikit import (
    UIButton,
    UILabel,
    UIPanGestureRecognizer,
    UIPinchGestureRecognizer,
    UITapGestureRecognizer,
    UIView,
)

_UIKIT_DEPS = ["/usr/lib/libSystem.B.dylib"]


class CalculatorDelegate:
    """Calculator Pro for iPad Free."""

    def __init__(self) -> None:
        self.display: Optional[UILabel] = None
        self.value = ""
        self.app = None

    def did_finish_launching(self, app) -> None:
        self.app = app
        window = app.window
        self.display = UILabel("0", x=20, y=20, width=window.width - 40, height=80)
        window.add_subview(self.display)

        keys = ["7", "8", "9", "/", "4", "5", "6", "*", "1", "2", "3", "-",
                "0", "C", "=", "+"]
        cell_w = (window.width - 40) // 4
        for index, key in enumerate(keys):
            col, row = index % 4, index // 4
            window.add_subview(
                UIButton(
                    key,
                    x=20 + col * cell_w,
                    y=140 + row * 110,
                    width=cell_w - 8,
                    height=100,
                    on_tap=lambda btn, k=key: self.key_pressed(k),
                )
            )
        # The iAd banner (paper Fig. 4b shows it live).
        banner = UIView(0, window.height - 70, window.width, 70, background="$")
        banner.display_text = "iAd: Your ad here"
        window.add_subview(banner)

    def key_pressed(self, key: str) -> None:
        if key == "C":
            self.value = ""
        elif key == "=":
            try:
                self.value = str(eval(self.value, {"__builtins__": {}}, {}))
            except Exception:
                self.value = "Error"
        else:
            self.value += key
        if self.display is not None:
            self.display.text = self.value or "0"


def calculator_main(ctx, argv: List[str]) -> int:
    ui_main = ctx.dlsym("UIKit", "_UIApplicationMain")
    return ui_main(CalculatorDelegate())


class PapersDelegate:
    """Papers: a PDF reader with pan / pinch-to-zoom / highlighting."""

    PAGE_LINES = [
        "Cider: Native Execution of",
        "iOS Apps on Android",
        "",
        "Abstract. We present Cider,",
        "an operating system compat-",
        "ibility architecture that can",
        "run applications built for",
        "different mobile ecosystems.",
    ]

    def __init__(self) -> None:
        self.scroll_y = 0.0
        self.zoom = 1.0
        self.highlights: List[int] = []
        self.page: Optional[UIView] = None
        self.status: Optional[UILabel] = None

    def did_finish_launching(self, app) -> None:
        window = app.window
        self.page = UIView(40, 60, window.width - 80, window.height - 140,
                           background=" ")
        window.add_subview(self.page)
        self.status = UILabel("Papers - page 1", x=20, y=10,
                              width=window.width - 40)
        window.add_subview(self.status)
        self._rebuild_page()

        self.page.add_gesture_recognizer(
            UIPanGestureRecognizer(self._panned)
        )
        self.page.add_gesture_recognizer(
            UIPinchGestureRecognizer(self._pinched)
        )
        self.page.add_gesture_recognizer(
            UITapGestureRecognizer(self._tapped)
        )

    def _rebuild_page(self) -> None:
        self.page.subviews.clear()
        line_height = int(44 * self.zoom)
        for index, line in enumerate(self.PAGE_LINES):
            y = 10 + index * line_height - self.scroll_y
            if y < -line_height or y > self.page.height:
                continue
            label = UILabel(line, x=10, y=y, width=self.page.width - 20,
                            height=line_height)
            if index in self.highlights:
                label.background = "="
            self.page.add_subview(label)

    def _panned(self, recognizer, dx: float, dy: float) -> None:
        self.scroll_y = max(0.0, self.scroll_y - dy)
        self._rebuild_page()

    def _pinched(self, recognizer, scale: float) -> None:
        self.zoom = max(0.5, min(3.0, scale))
        self._rebuild_page()
        if self.status is not None:
            self.status.text = f"Papers - zoom {self.zoom:.1f}x"

    def _tapped(self, recognizer) -> None:
        # Highlight the next line on each tap (stand-in for text select).
        line = len(self.highlights) % len(self.PAGE_LINES)
        if line not in self.highlights:
            self.highlights.append(line)
        self._rebuild_page()


def papers_main(ctx, argv: List[str]) -> int:
    ui_main = ctx.dlsym("UIKit", "_UIApplicationMain")
    return ui_main(PapersDelegate())


class StocksDelegate:
    """Stocks: an unencrypted system app; reads configd over Mach IPC."""

    QUOTES = [("AAPL", 452.97), ("GOOG", 879.73), ("MSFT", 31.62)]

    def __init__(self) -> None:
        self.device_label: Optional[UILabel] = None

    def did_finish_launching(self, app) -> None:
        from .services import configd_get

        window = app.window
        window.add_subview(UILabel("Stocks", x=20, y=10, width=300))
        for index, (symbol, price) in enumerate(self.QUOTES):
            window.add_subview(
                UILabel(
                    f"{symbol}  {price:+.2f}",
                    x=20,
                    y=80 + index * 90,
                    width=window.width - 40,
                    height=80,
                )
            )
        model = configd_get(app.ctx, "Model")
        self.device_label = UILabel(
            f"device: {model}", x=20, y=80 + len(self.QUOTES) * 90, width=400
        )
        window.add_subview(self.device_label)


def stocks_main(ctx, argv: List[str]) -> int:
    ui_main = ctx.dlsym("UIKit", "_UIApplicationMain")
    return ui_main(StocksDelegate())


# -- .ipa builders ------------------------------------------------------------------


def calculator_ipa(encrypted: bool = True) -> IpaPackage:
    binary = macho_executable(
        "CalculatorPro",
        calculator_main,
        deps=_UIKIT_DEPS,
        text_kb=900,
        data_kb=180,
        encrypted=encrypted,
    )
    return IpaPackage(
        bundle_id="com.apalon.calculator",
        display_name="Calculator",
        icon="=",
        binary=binary,
        data_files={"Info.plist": b"<plist>CalculatorPro</plist>"},
    )


def papers_ipa(encrypted: bool = True) -> IpaPackage:
    binary = macho_executable(
        "Papers",
        papers_main,
        deps=_UIKIT_DEPS,
        text_kb=2200,
        data_kb=400,
        encrypted=encrypted,
    )
    return IpaPackage(
        bundle_id="com.mekentosj.papers",
        display_name="Papers",
        icon="P",
        binary=binary,
        data_files={"sample.pdf": b"%PDF-1.4 cider sample"},
    )


def stocks_ipa() -> IpaPackage:
    """System apps such as Stocks ship unencrypted (paper §6.1)."""
    binary = macho_executable(
        "Stocks",
        stocks_main,
        deps=_UIKIT_DEPS,
        text_kb=700,
        data_kb=120,
        encrypted=False,
    )
    return IpaPackage(
        bundle_id="com.apple.stocks",
        display_name="Stocks",
        icon="S",
        binary=binary,
    )
