"""The iOS OpenGL ES library: native variant and the Cider replacement.

**Native variant** (ships on Apple hardware): every entry point first
ensures a connection to the proprietary GPU accelerator service
(``IOGraphicsAccelerator2``) through opaque Mach IPC.  On Apple hardware
that service exists and the standardised GL functionality proceeds; on a
Cider device it does not, and the library is unusable — "neither
implementing kernel-level emulation code nor duct taping a piece [of] GPU
driver code ... will solve this problem" (paper §5.3).  Because the
app-facing API is standardised and "typically similar across platforms",
the post-connection behaviour is shared with the Android GL state machine.

**Cider replacement**: "Cider replaces the entire iOS OpenGL ES library
with diplomats" — built by the automated generator for the standard API
(matched against libGLESv2.so's ELF exports) plus hand-written diplomats
for Apple's EAGL extensions targeting libEGLbridge.  The prototype's
broken fence synchronisation (§6.3) lives in the replacement's
``glClientWaitSyncAPPLE`` diplomat, toggleable for the ablation bench.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Sequence, Tuple

from ..android import gles as agl
from ..diplomacy.diplomat import Diplomat
from ..diplomacy.generator import GenerationReport, generate_diplomats
from .iosurface import AppleGPUNotPresentError

if TYPE_CHECKING:
    from ..binfmt import BinaryImage
    from ..kernel.process import UserContext

LIB_STATE_KEY = "OpenGLES"


def _require_apple_gpu(ctx: "UserContext") -> None:
    """Connect to the Apple GPU accelerator (first call per process)."""
    state = ctx.lib_state(LIB_STATE_KEY)
    if state.get("agx_connected"):
        return
    libc = ctx.libc
    service = libc.io_service_get_matching_service(
        {"IOClass": "IOGraphicsAccelerator2"}
    )
    if not service:
        raise AppleGPUNotPresentError(
            "IOGraphicsAccelerator2 not found: the Apple GPU stack is not "
            "present on this device"
        )
    kr, connect = libc.io_service_open(service)
    if kr != 0:
        raise AppleGPUNotPresentError(f"accelerator open failed: {kr}")
    state["agx_connected"] = True
    state["agx_connect_id"] = connect


def _wrap_native(gl_fn: Callable) -> Callable:
    def native_entry(ctx: "UserContext", *args: object) -> object:
        _require_apple_gpu(ctx)
        return gl_fn(ctx, *args)

    native_entry.__name__ = f"native_{gl_fn.__name__}"
    return native_entry


# -- native EAGL extensions -----------------------------------------------------


class EAGLContext:
    """The object iOS apps hold; wraps the platform context."""

    def __init__(self, platform_context: object) -> None:
        self.platform_context = platform_context
        self.drawable = None


def _native_EAGLContextCreate(ctx: "UserContext") -> EAGLContext:
    _require_apple_gpu(ctx)
    ctx.machine.charge("gl_call_cpu")
    compositor = getattr(ctx.machine, "surfaceflinger", None)
    if compositor is None:
        raise AppleGPUNotPresentError("no display compositor is running")
    return EAGLContext(agl.GLContext())


def _native_EAGLContextSetCurrent(
    ctx: "UserContext", context: EAGLContext
) -> bool:
    ctx.machine.charge("gl_call_cpu")
    agl.make_current(ctx, context.platform_context if context else None)
    return True


def _native_EAGLRenderbufferStorageFromDrawable(
    ctx: "UserContext", context: EAGLContext, drawable: object
) -> bool:
    ctx.machine.charge("gl_call_cpu")
    context.drawable = drawable
    return True


def _native_EAGLContextPresentRenderbuffer(
    ctx: "UserContext", context: EAGLContext
) -> bool:
    ctx.machine.charge("gl_call_cpu")
    agl.flush_to_gpu(ctx, context.platform_context)
    drawable = context.drawable
    if drawable is not None and hasattr(drawable, "post"):
        drawable.post()
    return True


def _native_glFenceSyncAPPLE(ctx: "UserContext", *args: object):
    _require_apple_gpu(ctx)
    return agl.glFenceSync(ctx)


def _native_glClientWaitSyncAPPLE(ctx: "UserContext", fence: object):
    _require_apple_gpu(ctx)
    return agl.glClientWaitSync(ctx, fence)


def native_opengles_exports() -> Dict[str, object]:
    """The Mach-O export table of the real iOS OpenGLES framework."""
    exports: Dict[str, object] = {}
    for name, fn in agl.gles_exports().items():
        exports[f"_{name}"] = _wrap_native(fn)
    exports["_glFenceSyncAPPLE"] = _native_glFenceSyncAPPLE
    exports["_glClientWaitSyncAPPLE"] = _native_glClientWaitSyncAPPLE
    exports["_EAGLContextCreate"] = _native_EAGLContextCreate
    exports["_EAGLContextSetCurrent"] = _native_EAGLContextSetCurrent
    exports["_EAGLRenderbufferStorageFromDrawable"] = (
        _native_EAGLRenderbufferStorageFromDrawable
    )
    exports["_EAGLContextPresentRenderbuffer"] = (
        _native_EAGLContextPresentRenderbuffer
    )
    return exports


# -- the Cider replacement library ------------------------------------------------


def _fence_wait_with_prototype_bug() -> Callable:
    """The replacement's fence wait: correct arbitration, but the fence
    primitive mapping is wrong when the prototype bug is enabled."""
    diplomat = Diplomat(
        foreign_symbol="_glClientWaitSyncAPPLE",
        domestic_library="libGLESv2.so",
        domestic_symbol="glClientWaitSync",
    )

    def entry(ctx: "UserContext", fence: object) -> object:
        config = getattr(ctx.kernel, "cider_config", {})
        broken = bool(config.get("fence_bug", False))
        return diplomat(ctx, fence, broken)

    return entry


def build_cider_opengles(
    native_library: "BinaryImage",
    domestic_images: Sequence["BinaryImage"],
) -> Tuple["BinaryImage", GenerationReport]:
    """Run the diplomat generator to produce Cider's OpenGL ES library."""
    manual: Dict[str, object] = {
        # Apple EAGL extensions -> the custom libEGLbridge library.
        "_EAGLContextCreate": Diplomat(
            "_EAGLContextCreate", "libEGLbridge.so", "eaglbridge_create_context"
        ),
        "_EAGLContextSetCurrent": Diplomat(
            "_EAGLContextSetCurrent", "libEGLbridge.so", "eaglbridge_set_current"
        ),
        "_EAGLRenderbufferStorageFromDrawable": Diplomat(
            "_EAGLRenderbufferStorageFromDrawable",
            "libEGLbridge.so",
            "eaglbridge_storage_from_drawable",
        ),
        "_EAGLContextPresentRenderbuffer": Diplomat(
            "_EAGLContextPresentRenderbuffer",
            "libEGLbridge.so",
            "eaglbridge_present",
        ),
        # Cider addition: window memory for apps launched without a
        # proxied CiderPress surface (benchmarks, headless tools).
        "_CiderCreateWindowSurface": Diplomat(
            "_CiderCreateWindowSurface",
            "libEGLbridge.so",
            "eaglbridge_create_window",
        ),
        # Apple fence extension: the suffix prevents an automatic match.
        "_glFenceSyncAPPLE": Diplomat(
            "_glFenceSyncAPPLE", "libGLESv2.so", "glFenceSync"
        ),
        "_glClientWaitSyncAPPLE": _fence_wait_with_prototype_bug(),
    }
    return generate_diplomats(native_library, domestic_images, manual)
