"""libSystem: the iOS C library and Mach runtime.

The foreign-persona counterpart of :mod:`repro.android.bionic`.  Syscalls
trap with XNU numbers through the thread's persona; BSD calls come back as
``(value, carry_flag)`` pairs — the carry flag signals failure and the
value is the positive errno, which libSystem stores in the *iOS TLS
area's* errno slot (at a different offset than Android's; §4.3).

Also provides the Mach side: ports, mach_msg, bootstrap lookups against
launchd, semaphores, and pthreads built on the duct-taped psynch kernel
support.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..compat import xnu_abi as xnu
from ..kernel.process import UserContext
from ..xnu.ipc import KERN_SUCCESS, MACH_MSG_SUCCESS, MACH_PORT_NULL, MachMessage

LIB_STATE_KEY = "libSystem"


class IOSLibc:
    """The libSystem facade bound to one user context."""

    def __init__(self, ctx: UserContext) -> None:
        self._ctx = ctx
        self._thread = ctx.thread

    # -- trap plumbing ------------------------------------------------------------

    def _state(self) -> dict:
        state = self._ctx.lib_state(LIB_STATE_KEY)
        state.setdefault("atexit", [])
        state.setdefault("atfork", [])
        state.setdefault("next_sync_addr", 0x1000)
        return state

    def _bsd(self, number: int, *args: object) -> object:
        """BSD syscall: decode the carry-flag error convention."""
        value, carry = self._thread.trap(number, *args)
        if carry:
            self._thread.errno = value if isinstance(value, int) else 0
            return -1
        return value

    def _mach(self, number: int, *args: object) -> object:
        """Mach trap: kern_return codes pass through undecoded."""
        value, _carry = self._thread.trap(number, *args)
        return value

    @property
    def errno(self) -> int:
        return self._thread.errno

    # -- identity -------------------------------------------------------------------

    def getpid(self) -> int:
        return self._bsd(xnu.SYS_getpid)

    def getppid(self) -> int:
        return self._bsd(xnu.SYS_getppid)

    def thread_selfid(self) -> int:
        return self._bsd(xnu.SYS_thread_selfid)

    # -- files -----------------------------------------------------------------------

    def open(self, path: str, flags: int = 0) -> int:
        return self._bsd(xnu.SYS_open, path, flags)

    def creat(self, path: str) -> int:
        return self._bsd(xnu.SYS_open, path, 0o1101)  # O_CREAT|O_WRONLY|O_TRUNC

    def close(self, fd: int) -> int:
        return self._bsd(xnu.SYS_close, fd)

    def read(self, fd: int, nbytes: int) -> object:
        return self._bsd(xnu.SYS_read, fd, nbytes)

    def write(self, fd: int, data: bytes) -> object:
        return self._bsd(xnu.SYS_write, fd, data)

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        return self._bsd(xnu.SYS_lseek, fd, offset, whence)

    def unlink(self, path: str) -> int:
        return self._bsd(xnu.SYS_unlink, path)

    def rename(self, old_path: str, new_path: str) -> int:
        return self._bsd(xnu.SYS_rename, old_path, new_path)

    def fsync(self, fd: int) -> int:
        return self._bsd(xnu.SYS_fsync, fd)

    def fdatasync(self, fd: int) -> int:
        return self._bsd(xnu.SYS_fdatasync, fd)

    def sync(self) -> int:
        return self._bsd(xnu.SYS_sync)

    def mkdir(self, path: str) -> int:
        return self._bsd(xnu.SYS_mkdir, path)

    def rmdir(self, path: str) -> int:
        return self._bsd(xnu.SYS_rmdir, path)

    def stat(self, path: str) -> object:
        return self._bsd(xnu.SYS_stat64, path)

    def ioctl(self, fd: int, request: int, arg: object = None) -> object:
        return self._bsd(xnu.SYS_ioctl, fd, request, arg)

    def pipe(self) -> object:
        return self._bsd(xnu.SYS_pipe)

    def select(
        self,
        read_fds: List[int],
        write_fds: Optional[List[int]] = None,
        timeout_ns: Optional[float] = 0,
    ) -> object:
        return self._bsd(xnu.SYS_select, read_fds, write_fds or [], timeout_ns)

    def readdir(self, path: str) -> List[str]:
        fd = self.open(path)
        if fd == -1:
            return []
        names = []
        while True:
            name = self._bsd(xnu.SYS_getdirentries, fd)
            if name is None or name == -1:
                break
            names.append(name)
        self.close(fd)
        return names

    # -- sockets -----------------------------------------------------------------------
    # The BSD socket family is where XNU and Linux genuinely share an
    # abstraction: these wrappers trap with XNU numbers into the *same*
    # kernel handlers Bionic reaches with Linux numbers (pass-through,
    # no diplomat) — only the error convention differs at this edge.

    def socket(self, domain: int = 1, sock_type: int = 1) -> int:
        """``socket(2)``: AF_UNIX (1, default) or AF_INET (2) x
        SOCK_STREAM (1) / SOCK_DGRAM (2)."""
        return self._bsd(xnu.SYS_socket, domain, sock_type)

    def bind(self, fd: int, addr: object, backlog: int = 8) -> int:
        """AF_UNIX: ``addr`` is a path (bind+listen); AF_INET: ``(ip, port)``."""
        return self._bsd(xnu.SYS_bind, fd, addr, backlog)

    def listen(self, fd: int, backlog: int = 128) -> int:
        return self._bsd(xnu.SYS_listen, fd, backlog)

    def connect(self, fd: int, addr: object) -> int:
        return self._bsd(xnu.SYS_connect, fd, addr)

    def accept(self, fd: int) -> int:
        return self._bsd(xnu.SYS_accept, fd)

    def sendto(self, fd: int, data: bytes, addr: object = None) -> object:
        return self._bsd(xnu.SYS_sendto, fd, data, addr)

    def recvfrom(self, fd: int, nbytes: int) -> object:
        """Returns ``(data, source_address)`` or -1 with errno set."""
        return self._bsd(xnu.SYS_recvfrom, fd, nbytes)

    def setsockopt(
        self, fd: int, level: int, option: int, value: object = 1
    ) -> int:
        return self._bsd(xnu.SYS_setsockopt, fd, level, option, value)

    def getsockopt(self, fd: int, level: int, option: int) -> object:
        return self._bsd(xnu.SYS_getsockopt, fd, level, option)

    def getsockname(self, fd: int) -> object:
        return self._bsd(xnu.SYS_getsockname, fd)

    def shutdown(self, fd: int, how: int = 2) -> int:
        return self._bsd(xnu.SYS_shutdown, fd, how)

    def socketpair(self) -> object:
        return self._bsd(xnu.SYS_socketpair)

    def getaddrinfo(self, name: str) -> Optional[str]:
        """Deterministic stub resolver, the libSystem half.

        Byte-for-byte the same wire exchange as Bionic's ``getaddrinfo``
        — same query datagram to 10.0.2.3:53, same answer parse — issued
        through XNU syscall numbers instead of Linux ones.  The identical
        behaviour *is* the pass-through demonstration.  The same
        timeout-retransmit-failover policy applies (``DNS_RETRIES``
        sends ``DNS_TIMEOUT_NS`` apart per server in ``DNS_SERVERS``),
        and exhausting every server sets errno to ETIMEDOUT after
        exactly ``servers x retries x timeout`` of virtual wait — a
        typed, bounded failure on both personas.
        """
        from ..kernel.errno import ETIMEDOUT
        from ..net.netstack import DNS_PORT, DNS_RETRIES, DNS_SERVERS, DNS_TIMEOUT_NS
        from ..net.sockets import AF_INET, SOCK_DGRAM

        self._ctx.machine.charge("net_dns_query_cpu")
        fd = self.socket(AF_INET, SOCK_DGRAM)
        if fd == -1:
            return None
        try:
            query = b"Q " + name.encode()
            for server_ip in DNS_SERVERS:
                for _attempt in range(DNS_RETRIES):
                    if self.sendto(fd, query, (server_ip, DNS_PORT)) == -1:
                        return None
                    ready = self.select([fd], timeout_ns=DNS_TIMEOUT_NS)
                    if ready == -1:
                        return None
                    if not ready[0]:
                        continue  # timed out: retransmit
                    result = self.recvfrom(fd, 512)
                    if result == -1:
                        return None
                    answer, _server = result
                    parts = answer.decode().split()
                    if parts and parts[0] == "A" and len(parts) == 3:
                        return parts[2]
                    return None  # authoritative NXDOMAIN: no failover
            self._thread.errno = ETIMEDOUT  # every server exhausted
            return None
        finally:
            self.close(fd)

    # -- processes ------------------------------------------------------------------------

    def fork(self, child_body: Callable[[UserContext], object]) -> int:
        """fork(2) with the full iOS callback storm: dyld registered one
        atfork handler set per loaded image (paper §6.2)."""
        atfork = self._state()["atfork"]
        machine = self._ctx.machine
        if atfork:  # prepare + parent phases
            machine.charge("atfork_handler", len(atfork))

        def child_with_handlers(child_ctx: UserContext) -> object:
            state = child_ctx.lib_state(LIB_STATE_KEY)
            handlers = state.get("atfork", [])
            if handlers:  # child phase
                child_ctx.machine.charge("atfork_handler", len(handlers))
            return child_body(child_ctx)

        return self._bsd(xnu.SYS_fork, child_with_handlers)

    def execve(self, path: str, argv: Optional[List[str]] = None) -> int:
        return self._bsd(xnu.SYS_execve, path, argv or [path])

    def posix_spawn(self, path: str, argv: Optional[List[str]] = None) -> int:
        """posix_spawn: child pid on success (no fork-copy of the parent)."""
        return self._bsd(xnu.SYS_posix_spawn, path, argv or [path])

    def waitpid(self, pid: int = -1) -> object:
        return self._bsd(xnu.SYS_wait4, pid)

    def exit(self, code: int = 0) -> None:
        """Run the (per-dylib) exit callbacks dyld registered, then exit."""
        state = self._state()
        handlers = state["atexit"]
        if handlers:
            self._ctx.machine.charge("atexit_handler", len(handlers))
            for handler in reversed(list(handlers)):
                if callable(handler):
                    handler(self._ctx)
            handlers.clear()
        self._bsd(xnu.SYS_exit, code)

    def atexit(self, handler: object) -> None:
        self._state()["atexit"].append(handler)

    def pthread_atfork(self, handler: object) -> None:
        self._state()["atfork"].append(handler)

    # -- resource limits -----------------------------------------------------------------

    def getrlimit(self, which: int) -> object:
        """Returns ``(soft, hard)``, or -1 with errno set.  rlimits are
        persona-independent state (one process, one limit set)."""
        return self._bsd(xnu.SYS_getrlimit, which)

    def setrlimit(
        self, which: int, soft: int, hard: Optional[int] = None
    ) -> int:
        return self._bsd(xnu.SYS_setrlimit, which, soft, hard)

    # -- signals (XNU numbering at this API) ---------------------------------------------

    def signal(self, xnu_signum: int, handler: object) -> object:
        return self._bsd(xnu.SYS_sigaction, xnu_signum, handler)

    def kill(self, pid: int, xnu_signum: int) -> int:
        return self._bsd(xnu.SYS_kill, pid, xnu_signum)

    def raise_(self, xnu_signum: int) -> int:
        return self.kill(self.getpid(), xnu_signum)

    # -- threads ------------------------------------------------------------------------------

    def pthread_create(
        self, fn: Callable[[UserContext], object], name: str = "pthread"
    ) -> int:
        return self._bsd(xnu.SYS_bsdthread_create, fn, name)

    def sleep_ns(self, duration_ns: float) -> int:
        return self._bsd(xnu.SYS_semwait_signal, duration_ns)

    def sched_yield(self) -> object:
        return self._mach(xnu.TRAP_swtch_pri)

    # pthread mutex / condvar over duct-taped psynch kernel support --------------

    def _alloc_sync_addr(self) -> int:
        state = self._state()
        addr = state["next_sync_addr"]
        state["next_sync_addr"] = addr + 0x40
        return addr

    def pthread_mutex_init(self) -> int:
        return self._alloc_sync_addr()

    def pthread_mutex_lock(self, mutex_addr: int) -> int:
        return self._bsd(xnu.SYS_psynch_mutexwait, mutex_addr)

    def pthread_mutex_unlock(self, mutex_addr: int) -> int:
        return self._bsd(xnu.SYS_psynch_mutexdrop, mutex_addr)

    def pthread_cond_init(self) -> int:
        return self._alloc_sync_addr()

    def pthread_cond_wait(
        self, cv_addr: int, mutex_addr: int, timeout_ns: Optional[float] = None
    ) -> int:
        return self._bsd(xnu.SYS_psynch_cvwait, cv_addr, mutex_addr, timeout_ns)

    def pthread_cond_signal(self, cv_addr: int) -> int:
        return self._bsd(xnu.SYS_psynch_cvsignal, cv_addr)

    def pthread_cond_broadcast(self, cv_addr: int) -> int:
        return self._bsd(xnu.SYS_psynch_cvbroad, cv_addr)

    # -- Mach ports & messages ---------------------------------------------------------------

    def mach_task_self(self) -> int:
        return self._mach(xnu.TRAP_task_self)

    def mach_reply_port(self) -> int:
        return self._mach(xnu.TRAP_mach_reply_port)

    def mach_port_allocate(self) -> Tuple[int, int]:
        return self._mach(xnu.TRAP_mach_port_allocate)

    def mach_port_allocate_set(self) -> Tuple[int, int]:
        return self._mach(xnu.TRAP_mach_port_allocate_set)

    def mach_port_move_member(self, port_name: int, set_name: int) -> int:
        return self._mach(xnu.TRAP_mach_port_move_member, port_name, set_name)

    def mach_port_destroy(self, name: int) -> int:
        return self._mach(xnu.TRAP_mach_port_destroy, name)

    def mach_port_deallocate(self, name: int) -> int:
        return self._mach(xnu.TRAP_mach_port_deallocate, name)

    def mach_msg_send(
        self,
        dest: int,
        msg: MachMessage,
        reply_name: int = MACH_PORT_NULL,
        timeout_ns: Optional[float] = None,
    ) -> int:
        return self._mach(
            xnu.TRAP_mach_msg, xnu.MACH_SEND_MSG, dest, msg, reply_name, timeout_ns
        )

    def mach_msg_receive(
        self, name: int, timeout_ns: Optional[float] = None
    ) -> Tuple[int, Optional[MachMessage]]:
        return self._mach(
            xnu.TRAP_mach_msg, xnu.MACH_RCV_MSG, name, None, 0, timeout_ns
        )

    def mach_msg_rpc(
        self,
        dest: int,
        msg: MachMessage,
        timeout_ns: Optional[float] = None,
    ) -> Tuple[int, Optional[MachMessage]]:
        return self._mach(
            xnu.TRAP_mach_msg,
            xnu.MACH_SEND_MSG | xnu.MACH_RCV_MSG,
            dest,
            msg,
            0,
            timeout_ns,
        )

    # -- bootstrap (launchd) -----------------------------------------------------------------------

    def bootstrap_port(self) -> int:
        kr, name = self._mach(xnu.TRAP_task_get_bootstrap_port)
        return name if kr == KERN_SUCCESS else MACH_PORT_NULL

    def host_set_bootstrap_port(self, port_name: int) -> int:
        """launchd-only: install the host bootstrap port."""
        return self._mach(xnu.TRAP_host_set_bootstrap_port, port_name)

    def bootstrap_register(self, service_name: str, port_name: int) -> int:
        """Register a service port with launchd."""
        bootstrap = self.bootstrap_port()
        if bootstrap == MACH_PORT_NULL:
            return -1
        from ..xnu.ipc import MACH_MSG_TYPE_MAKE_SEND

        msg = MachMessage(
            msg_id=400,
            body={"op": "register", "name": service_name},
            # The service port right rides in the header's reply slot.
            reply_disposition=MACH_MSG_TYPE_MAKE_SEND,
        )
        code = self._mach(
            xnu.TRAP_mach_msg,
            xnu.MACH_SEND_MSG,
            bootstrap,
            msg,
            port_name,
            None,
        )
        return 0 if code == MACH_MSG_SUCCESS else -1

    def bootstrap_look_up(
        self, service_name: str, timeout_ns: Optional[float] = None
    ) -> int:
        """Resolve a service name to a send right (blocking RPC).

        ``timeout_ns`` bounds the RPC so a dead launchd (or an injected
        fault) yields MACH_PORT_NULL instead of a hang."""
        bootstrap = self.bootstrap_port()
        if bootstrap == MACH_PORT_NULL:
            return MACH_PORT_NULL
        msg = MachMessage(msg_id=404, body={"op": "lookup", "name": service_name})
        code, reply = self.mach_msg_rpc(bootstrap, msg, timeout_ns)
        if code != MACH_MSG_SUCCESS or reply is None:
            return MACH_PORT_NULL
        # The service right arrives as a body-carried port right.
        return reply.body_right_name

    # -- Mach semaphores ----------------------------------------------------------------------------

    def semaphore_create(self, value: int = 0) -> Tuple[int, int]:
        return self._mach(xnu.TRAP_semaphore_create, value)

    def semaphore_destroy(self, sema_id: int) -> int:
        return self._mach(xnu.TRAP_semaphore_destroy, sema_id)

    def semaphore_signal(self, sema_id: int) -> int:
        return self._mach(xnu.TRAP_semaphore_signal, sema_id)

    def semaphore_signal_all(self, sema_id: int) -> int:
        return self._mach(xnu.TRAP_semaphore_signal_all, sema_id)

    def semaphore_wait(self, sema_id: int) -> int:
        return self._mach(xnu.TRAP_semaphore_wait, sema_id)

    def semaphore_timedwait(self, sema_id: int, timeout_ns: float) -> int:
        return self._mach(xnu.TRAP_semaphore_timedwait, sema_id, timeout_ns)

    # -- machdep TLS ---------------------------------------------------------------------------------

    def set_cthread_self(self, value: object) -> object:
        return self._bsd(xnu.MACHDEP_set_cthread_self, value)

    def get_cthread_self(self) -> object:
        value, _carry = self._thread.trap(xnu.MACHDEP_get_cthread_self)
        return value

    # -- I/O Kit user API ------------------------------------------------------------------------------

    def io_service_get_matching_service(self, matching: dict) -> int:
        value, _ = self._thread.trap(
            xnu.TRAP_iokit_user_client, "get_matching_service", matching
        )
        return value

    def io_registry_entry_get_property(self, service_id: int, key: str):
        value, _ = self._thread.trap(
            xnu.TRAP_iokit_user_client, "get_property", service_id, key
        )
        return value

    def io_service_open(self, service_id: int) -> Tuple[int, int]:
        value, _ = self._thread.trap(
            xnu.TRAP_iokit_user_client, "open", service_id
        )
        return value

    def io_connect_call_method(
        self, connect_id: int, selector: int, *args: object
    ) -> Tuple[int, object]:
        value, _ = self._thread.trap(
            xnu.TRAP_iokit_user_client, "call_method", connect_id, selector, args
        )
        return value

    def io_service_close(self, connect_id: int) -> int:
        value, _ = self._thread.trap(
            xnu.TRAP_iokit_user_client, "close", connect_id
        )
        return value

    # -- diagnostics ------------------------------------------------------------------------------------

    def kdebug_trace(self, *args: object) -> int:
        value, _ = self._thread.trap(xnu.DIAG_kdebug_trace, *args)
        return value

    # -- Cider-specific ------------------------------------------------------------------------------------

    def set_persona(self, persona_name: str) -> object:
        """Call Cider's set_persona syscall (used by libdiplomat)."""
        return self._bsd(xnu.SYS_set_persona, persona_name)
