"""WebKit-lite: the iOS web engine, with the prototype's limitation.

Paper §6.4: "the iOS WebKit framework is only partially supported due to
its multi-threaded use of the OpenGL ES API.  We expect these limitations
to be removed with additional engineering effort."

WebKit composites page tiles on worker threads, each issuing OpenGL ES
calls against a shared context.  The Cider replacement GL library routes
every call through diplomats into Android's libGLESv2, whose context
state is managed per-process in this prototype — concurrent tile threads
would corrupt the current-context binding.  WebKit therefore detects a
Cider GL stack and falls back to single-threaded tile rendering
(functional, slower: "partially supported"), while on Apple hardware the
threaded path runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:
    from ..kernel.process import UserContext

TILE_ROWS = 4
TILE_COLS = 4
LIB_STATE_KEY = "WebKit"


class WebPage:
    """A parsed page: a list of text lines (the simulation's DOM)."""

    def __init__(self, html: str) -> None:
        self.lines: List[str] = []
        for raw in html.splitlines():
            text = raw.strip()
            for tag in ("<p>", "</p>", "<h1>", "</h1>", "<body>", "</body>"):
                text = text.replace(tag, "")
            if text:
                self.lines.append(text)


class WKWebViewLite:
    """A web view: parse, lay out, rasterise tiles, composite via GL."""

    def __init__(self, ctx: "UserContext", width: int = 800, height: int = 600):
        self.ctx = ctx
        self.width = width
        self.height = height
        self.page: WebPage = WebPage("")
        self.tile_threads_used = 0
        self.single_thread_fallback = False

    # -- loading ------------------------------------------------------------

    def load_html(self, html: str) -> WebPage:
        self.ctx.machine.charge("native_op", 50 * max(1, len(html) // 64))
        self.page = WebPage(html)
        return self.page

    # -- rendering -------------------------------------------------------------

    def _gl_is_diplomatic(self) -> bool:
        gles = self.ctx.process.loaded_libraries.get("OpenGLES")
        if gles is None:
            return False
        symbol = gles.exports.get("_glClear")
        from ..diplomacy.diplomat import Diplomat

        return symbol is not None and isinstance(symbol.fn, Diplomat)

    def _raster_tile(self, tctx: "UserContext", tile_index: int) -> int:
        """CPU-rasterise one tile, then upload it through GL."""
        from ..android import gles as agl

        tctx.machine.charge("raster2d_image_op", 64)
        upload = tctx.dlsym("OpenGLES", "_glTexImage2D")
        upload(0x0DE1, 0, self.width // TILE_COLS, self.height // TILE_ROWS)
        return tile_index

    def render(self) -> Dict[str, object]:
        """Rasterise all tiles and composite one frame."""
        ctx = self.ctx
        eagl = ctx.dlsym("OpenGLES", "_EAGLContextCreate")()
        ctx.dlsym("OpenGLES", "_EAGLContextSetCurrent")(eagl)
        tiles = TILE_ROWS * TILE_COLS

        if self._gl_is_diplomatic():
            # Cider: multi-threaded GL is unsupported — single-thread
            # fallback (the "partially supported" behaviour).
            self.single_thread_fallback = True
            for index in range(tiles):
                self._raster_tile(ctx, index)
        else:
            # Apple hardware: tile workers issue GL concurrently.
            self.single_thread_fallback = False
            done = []
            workers = 4
            per_worker = tiles // workers

            def worker(first):
                def run(tctx):
                    tctx.dlsym("OpenGLES", "_EAGLContextSetCurrent")(eagl)
                    for index in range(first, first + per_worker):
                        done.append(self._raster_tile(tctx, index))
                    return 0

                return run

            for w in range(workers):
                ctx.libc.pthread_create(worker(w * per_worker))
                self.tile_threads_used += 1
            while len(done) < tiles:
                ctx.libc.sched_yield()

        ctx.dlsym("OpenGLES", "_glClear")(0x4000)
        ctx.dlsym("OpenGLES", "_glDrawArrays")(4, 0, tiles * 6)
        return {
            "tiles": tiles,
            "threads": self.tile_threads_used,
            "fallback": self.single_thread_fallback,
            "lines": len(self.page.lines),
        }


def WKWebViewCreate(ctx: "UserContext", width: int = 800, height: int = 600):
    ctx.machine.charge("native_op", 400)
    return WKWebViewLite(ctx, width, height)


def webkit_exports() -> Dict[str, object]:
    return {"_WKWebViewCreate": WKWebViewCreate}
