"""Package."""
