"""dyld: the iOS user-space dynamic linker.

Invoked from the kernel's Mach-O loader (paper §2), dyld resolves the
binary's dylib dependency closure, maps every image, and registers the
per-library callbacks whose cost dominates the paper's fork/exec numbers:

* without a prelinked **shared cache** (the Cider prototype), dyld "must
  walk the filesystem to load each library on every exec" — ~115
  libraries / ~90 MB even for a hello-world, each paying an open + map +
  link charge (§6.2);
* with the shared cache (iOS on real hardware; implemented here as the
  future-work ablation), the whole prelinked cache maps in one go, its
  pages live in a shared submap that fork does not copy, and handler
  registration is batched.

Each loaded image registers a pthread_atfork handler set and an exit
callback in libSystem — "resulting in the execution of 115 handlers on
exit" (§6.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..binfmt import BinaryImage
from ..kernel.errno import ENOENT, SyscallError
from ..kernel.vfs import RegularFile

if TYPE_CHECKING:
    from ..kernel.process import UserContext

#: Where iOS keeps the prelinked cache.
SHARED_CACHE_PATH = (
    "/System/Library/Caches/com.apple.dyld/dyld_shared_cache_armv7"
)

#: With the cache, dyld's optimised handling batches callback
#: registration: one handler entry covers this many prelinked images.
CACHE_HANDLER_BATCH = 8

LIBSYSTEM_STATE = "libSystem"

#: The VMA name the mapped cache carries in every address space.
SHARED_CACHE_VMA = "dyld_shared_cache"


def evict_shared_cache(kernel: "object") -> int:
    """Jetsam pressure evictor: drop the shared cache's clean pages.

    Unmaps the ``dyld_shared_cache`` submap region from every live
    process; when the last reference goes the machine-wide (refcounted)
    reservation is released back to the envelope.  This models XNU
    discarding the cache's clean, re-faultable pages under pressure — the
    simulation never reads the region after mapping, so dropping it is
    behaviour-preserving.  Returns the number of bytes released.
    """
    machine = kernel.machine  # type: ignore[attr-defined]
    res = machine.resources
    before = res.ram_used if res is not None else 0
    dropped = 0
    for process in kernel.processes.live_processes():  # type: ignore[attr-defined]
        while True:
            vma = process.address_space.find(SHARED_CACHE_VMA)
            if vma is None:
                break
            dropped += vma.size_bytes
            process.address_space.unmap(vma)
    if res is not None:
        freed = before - res.ram_used
    else:
        freed = dropped
    if dropped:
        machine.emit(
            "resource", "dyld_cache_evicted", unmapped=dropped, freed=freed
        )
    # Cache generation moved on: every prebuilt launch closure was
    # validated against the old generation and must be rebuilt.
    dyld = getattr(kernel, "dyld", None)
    if dyld is not None:
        dyld.invalidate_closures()
    return freed


class LaunchClosure:
    """A dyld3-style prebuilt launch closure for one main image.

    Records the fully resolved, ordered dependency closure so a repeat
    exec of the same image skips the per-library filesystem walk: the
    closure is validated against the cache generation (one stat + hash
    check, ``dyld_closure_hit``) and then each image is replayed — map
    plus a residual fix-up (``dyld_closure_lib_replay``) instead of
    open-walk-link.
    """

    __slots__ = ("image", "generation", "entries", "cache_total_bytes")

    def __init__(
        self,
        image: BinaryImage,
        generation: int,
        entries: List,
        cache_total_bytes: int,
    ) -> None:
        self.image = image
        self.generation = generation
        #: Ordered ``(lib_image, from_cache)`` pairs.
        self.entries = entries
        self.cache_total_bytes = cache_total_bytes


class SharedCache:
    """The prelinked dyld shared cache: an index of contained images."""

    def __init__(self, images: List[BinaryImage]) -> None:
        self.images = list(images)
        self._by_name: Dict[str, BinaryImage] = {}
        for image in images:
            self._by_name[image.install_name] = image
            self._by_name[image.name] = image

    @property
    def total_bytes(self) -> int:
        return sum(image.vm_size_bytes for image in self.images)

    def contains(self, install_name: str) -> bool:
        return install_name in self._by_name

    def get(self, install_name: str) -> BinaryImage:
        return self._by_name[install_name]


class DyldStats:
    """What one program load cost (inspectable by tests/benches)."""

    def __init__(self) -> None:
        self.libraries_loaded = 0
        self.from_cache = 0
        self.walked_filesystem = 0
        self.from_closure = 0
        self.closure_hit = False
        self.mapped_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<DyldStats libs={self.libraries_loaded} cache={self.from_cache} "
            f"closure={self.from_closure} mb={self.mapped_bytes >> 20}>"
        )


class Dyld:
    """One dyld configuration shared by every Mach-O exec on a kernel."""

    def __init__(
        self, use_shared_cache: bool = False, use_closures: bool = False
    ) -> None:
        self.use_shared_cache = use_shared_cache
        #: dyld3-style launch closures (warm-path ablation, off by
        #: default — the Cider prototype re-walked the filesystem on
        #: every exec, paper §6.2).
        self.use_closures = use_closures
        self.last_stats: Optional[DyldStats] = None
        #: True once :func:`evict_shared_cache` is on the kernel's
        #: pressure-evictor list (registered on first cache map).
        self._evictor_registered = False
        #: Shared-cache generation: closures prebuilt against an older
        #: generation fail validation and are rebuilt.
        self.cache_generation = 0
        self._closures: Dict[str, LaunchClosure] = {}

    def invalidate_closures(self) -> None:
        """Drop every prebuilt closure and move the cache generation on
        (called when the shared cache is evicted under pressure)."""
        self.cache_generation += 1
        self._closures.clear()

    # -- program startup ---------------------------------------------------------

    def bootstrap(self, ctx: "UserContext", image: BinaryImage, argv: List[str]) -> int:
        """Load libraries, run the entry point, flow through exit."""
        self.last_stats = self._load_libraries(ctx, image)
        entry = image.entry
        result = entry(ctx, list(argv))
        code = result if isinstance(result, int) else 0
        exit_fn = getattr(ctx.libc, "exit", None)
        if exit_fn is not None:
            exit_fn(code)
        return code

    # -- library loading ------------------------------------------------------------

    def _resolve_cache(self, ctx: "UserContext") -> Optional[SharedCache]:
        if not self.use_shared_cache:
            return None
        try:
            node = ctx.kernel.vfs.resolve(SHARED_CACHE_PATH)
        except SyscallError:
            return None
        cache = getattr(node, "shared_cache", None)
        return cache if isinstance(cache, SharedCache) else None

    def _load_libraries(self, ctx: "UserContext", image: BinaryImage) -> DyldStats:
        """Resolve the dependency closure — a ``ios.dyld.load`` span, so
        the profiler shows exactly how much of every Mach-O exec is dyld
        walking the filesystem (the paper's §6.2 fork/exec story)."""
        obs = ctx.machine.obs
        if obs is None:
            return self._load_libraries_body(ctx, image)
        span = obs.enter_span("ios.dyld.load", image.name, None)
        try:
            stats = self._load_libraries_body(ctx, image)
        finally:
            obs.exit_span(span)
        obs.metrics.counter("ios.dyld.libs.loaded").inc(stats.libraries_loaded)
        obs.metrics.counter("ios.dyld.libs.walked").inc(stats.walked_filesystem)
        obs.metrics.counter("ios.dyld.libs.cached").inc(stats.from_cache)
        obs.metrics.counter("ios.dyld.libs.closure").inc(stats.from_closure)
        obs.metrics.gauge("ios.dyld.mapped.bytes").set(stats.mapped_bytes)
        return stats

    def _load_libraries_body(
        self, ctx: "UserContext", image: BinaryImage
    ) -> DyldStats:
        machine = ctx.machine
        process = ctx.process
        if self.use_closures:
            closure = self._closures.get(image.name)
            if (
                closure is not None
                and closure.generation == self.cache_generation
                and closure.image is image
            ):
                return self._replay_closure(ctx, closure)
        stats = DyldStats()
        cache = self._resolve_cache(ctx)
        cache_mapped = False

        loaded: Set[str] = set()
        queue: List[str] = list(image.deps)
        state = ctx.lib_state(LIBSYSTEM_STATE)
        atfork = state.setdefault("atfork", [])
        atexit = state.setdefault("atexit", [])
        cache_images = 0
        closure_entries: List = []

        while queue:
            dep = queue.pop(0)
            if dep in loaded:
                continue
            loaded.add(dep)

            if cache is not None and cache.contains(dep):
                if not cache_mapped:
                    # Map the entire prelinked cache once, as a shared
                    # submap fork will not copy.
                    machine.charge("dyld_shared_cache_map")
                    process.address_space.map(
                        SHARED_CACHE_VMA,
                        cache.total_bytes,
                        shared_cache=True,
                    )
                    stats.mapped_bytes += cache.total_bytes
                    cache_mapped = True
                    if not self._evictor_registered:
                        self._evictor_registered = True
                        ctx.kernel.pressure_evictors.append(
                            lambda k=ctx.kernel: evict_shared_cache(k)
                        )
                lib = cache.get(dep)
                # Prelinked: binding work is already done in the cache.
                machine.charge("dyld_link_per_lib", 0.25)
                stats.from_cache += 1
                cache_images += 1
                closure_entries.append((lib, True))
            else:
                lib = self._walk_filesystem(ctx, dep)
                machine.charge("dyld_lib_map_per_mb", lib.vm_size_mb)
                machine.charge("dyld_link_per_lib")
                process.address_space.map(f"dylib:{lib.name}", lib.vm_size_bytes)
                stats.mapped_bytes += lib.vm_size_bytes
                stats.walked_filesystem += 1
                # Every individually loaded image registers fork and exit
                # callbacks.
                atfork.append(f"atfork:{lib.name}")
                atexit.append(f"atexit:{lib.name}")
                closure_entries.append((lib, False))

            stats.libraries_loaded += 1
            process.loaded_libraries[lib.name] = lib
            process.loaded_libraries[lib.install_name] = lib
            queue.extend(d for d in lib.deps if d not in loaded)

        # Batched handler registration for the prelinked images.
        for batch in range(0, cache_images, CACHE_HANDLER_BATCH):
            atfork.append(f"atfork:cache-batch-{batch}")
            atexit.append(f"atexit:cache-batch-{batch}")
        if self.use_closures:
            self._closures[image.name] = LaunchClosure(
                image,
                self.cache_generation,
                closure_entries,
                cache.total_bytes if cache is not None else 0,
            )
        return stats

    def _replay_closure(
        self, ctx: "UserContext", closure: LaunchClosure
    ) -> DyldStats:
        """Warm exec: the image is already located and its link edits
        prevalidated — validate the closure against the cache generation
        (``dyld_closure_hit``) and replay each entry (map + residual
        fix-up) instead of walking the filesystem per library."""
        machine = ctx.machine
        process = ctx.process
        stats = DyldStats()
        stats.closure_hit = True
        machine.charge("dyld_closure_hit")
        state = ctx.lib_state(LIBSYSTEM_STATE)
        atfork = state.setdefault("atfork", [])
        atexit = state.setdefault("atexit", [])
        cache_mapped = False
        cache_images = 0
        for lib, from_cache in closure.entries:
            if from_cache:
                if not cache_mapped:
                    # The cache submap must still be mapped per process.
                    machine.charge("dyld_shared_cache_map")
                    process.address_space.map(
                        SHARED_CACHE_VMA,
                        closure.cache_total_bytes,
                        shared_cache=True,
                    )
                    stats.mapped_bytes += closure.cache_total_bytes
                    cache_mapped = True
                # No per-lib link charge: the closure *is* the
                # prevalidated bind state for prelinked images — the
                # single ``dyld_closure_hit`` validation covered it.
                stats.from_cache += 1
                stats.from_closure += 1
                cache_images += 1
            else:
                machine.charge("dyld_lib_map_per_mb", lib.vm_size_mb)
                machine.charge("dyld_closure_lib_replay")
                process.address_space.map(f"dylib:{lib.name}", lib.vm_size_bytes)
                stats.mapped_bytes += lib.vm_size_bytes
                stats.from_closure += 1
                atfork.append(f"atfork:{lib.name}")
                atexit.append(f"atexit:{lib.name}")
            stats.libraries_loaded += 1
            process.loaded_libraries[lib.name] = lib
            process.loaded_libraries[lib.install_name] = lib
        for batch in range(0, cache_images, CACHE_HANDLER_BATCH):
            atfork.append(f"atfork:cache-batch-{batch}")
            atexit.append(f"atexit:cache-batch-{batch}")
        return stats

    def _walk_filesystem(self, ctx: "UserContext", install_name: str) -> BinaryImage:
        """Locate one dylib by path — the non-prelinked slow path."""
        machine = ctx.machine
        obs = machine.obs
        if obs is None:
            return self._walk_filesystem_body(ctx, install_name)
        span = obs.enter_span("ios.dyld.walk", install_name, None)
        try:
            return self._walk_filesystem_body(ctx, install_name)
        finally:
            obs.exit_span(span)

    def _walk_filesystem_body(
        self, ctx: "UserContext", install_name: str
    ) -> BinaryImage:
        machine = ctx.machine
        machine.charge("dyld_lib_open")
        if machine.faults is not None:
            outcome = machine.faults.check("dyld.load", library=install_name)
            injected = ctx.kernel.apply_fault_errno(ctx.process, outcome)
            if injected is not None:
                raise SyscallError(
                    injected, f"dyld: library not loaded: {install_name}"
                )
        try:
            node = ctx.kernel.vfs.resolve(install_name)
        except SyscallError:
            raise SyscallError(ENOENT, f"dyld: library not loaded: {install_name}")
        if not isinstance(node, RegularFile) or node.binary_image is None:
            raise SyscallError(ENOENT, f"dyld: not a dylib: {install_name}")
        return node.binary_image
