"""CoreGraphics-lite: the iOS CPU 2D rendering path.

Shares the raster engine with the Android side
(:class:`repro.android.skia.Canvas` — both are user-space libraries, so
no kernel zone rules apply) but carries its *own* per-primitive
efficiency table: the paper's PassMark 2D results show Android's 2D
libraries beating the iOS path on most primitives, with complex vector
(path) rendering the one case where iOS wins (§6.3: "with the exception
of complex vectors, the Android app performs much better ... most likely
due to more efficient/optimized 2D drawing libraries in Android").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..android.skia import Canvas
from ..hw.display import PixelBuffer

if TYPE_CHECKING:
    from ..kernel.process import UserContext

#: CoreGraphics per-primitive multipliers relative to the raster2d base
#: costs (Skia is the 1.0 reference).  <1.0 means iOS is faster.
CG_MULTIPLIERS: Dict[str, float] = {
    "raster2d_solid_op": 1.55,
    "raster2d_trans_op": 1.45,
    "raster2d_complex_op": 0.55,  # CG's path renderer beats Skia's
    "raster2d_image_op": 1.30,
    "raster2d_filter_op": 1.55,
}


def CGBitmapContextCreate(
    ctx: "UserContext", pixels: PixelBuffer
) -> Canvas:
    """Create a drawing context over existing pixel memory (typically an
    IOSurface base address)."""
    ctx.machine.charge("native_op", 60)
    return Canvas(pixels, CG_MULTIPLIERS)


def CGContextFillRect(ctx, canvas: Canvas, x, y, w, h, ch="#"):
    canvas.fill_rect(ctx, x, y, w, h, ch)


def CGContextStrokePath(ctx, canvas: Canvas, points, ch="~", units=256):
    canvas.draw_complex_vector(ctx, points, ch, units)


def CGContextDrawImage(ctx, canvas: Canvas, x, y, w, h):
    canvas.draw_image(ctx, x, y, w, h)


def CGContextShowText(ctx, canvas: Canvas, x, y, text):
    canvas.draw_text(ctx, x, y, text)


def coregraphics_exports() -> Dict[str, object]:
    return {
        "_CGBitmapContextCreate": CGBitmapContextCreate,
        "_CGContextFillRect": CGContextFillRect,
        "_CGContextStrokePath": CGContextStrokePath,
        "_CGContextDrawImage": CGContextDrawImage,
        "_CGContextShowText": CGContextShowText,
    }
