"""IOSurface: iOS's zero-copy graphics memory abstraction.

"The IOSurface iOS library provides a zero-copy abstraction for all
graphics memory in iOS.  An IOSurface object can be used to render 2D
graphics via CPU-bound drawing routines, efficiently passed to other
processes or apps via Mach IPC, and even used as the backing memory for
OpenGL ES textures" (paper §5.3).

Two variants live here:

* the **native** library (what ships on an iPad): allocates surfaces by
  opening the ``IOSurfaceRoot`` I/O Kit service through opaque Mach IPC.
  On a Cider device that service does not exist — the call fails, which
  is precisely why Cider interposes;
* the **Cider** library: "Cider interposes diplomatic functions on key
  IOSurface API entry points such as IOSurfaceCreate.  These diplomats
  call into Android-specific graphics memory allocation libraries such
  as libgralloc."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..hw.display import PixelBuffer

if TYPE_CHECKING:
    from ..kernel.process import UserContext


class AppleGPUNotPresentError(Exception):
    """The Apple graphics stack's I/O Kit services are missing (i.e. the
    foreign library was run on non-Apple hardware without diplomats)."""


class IOSurface:
    """One surface object as seen by iOS user space."""

    _next_id = 1

    def __init__(self, width_px: int, height_px: int, pixels: PixelBuffer):
        self.surface_id = IOSurface._next_id
        IOSurface._next_id += 1
        self.width_px = width_px
        self.height_px = height_px
        self._pixels = pixels
        #: Set by the Cider variant: the gralloc buffer backing this
        #: surface (zero-copy sharing with the Android side).
        self.gralloc_buffer = None
        self.lock_count = 0

    @property
    def size_bytes(self) -> int:
        return self._pixels.size_bytes

    def base_address(self) -> PixelBuffer:
        return self._pixels

    def __repr__(self) -> str:
        return f"<IOSurface #{self.surface_id} {self.width_px}x{self.height_px}>"


# -- native library (Apple hardware path) ----------------------------------------


def _native_IOSurfaceCreate(
    ctx: "UserContext", width_px: int, height_px: int
) -> IOSurface:
    """Allocate through the IOSurfaceRoot I/O Kit service."""
    libc = ctx.libc
    state = ctx.lib_state("IOSurface")
    connect = state.get("root_connect")
    if connect is None:
        service = libc.io_service_get_matching_service(
            {"IOClass": "IOSurfaceRoot"}
        )
        if not service:
            raise AppleGPUNotPresentError(
                "IOSurfaceRoot service not found: the proprietary Apple "
                "graphics stack is not present on this device"
            )
        kr, connect = libc.io_service_open(service)
        if kr != 0:
            raise AppleGPUNotPresentError(f"IOSurfaceRoot open failed: {kr}")
        state["root_connect"] = connect
    _kr, surface = libc.io_connect_call_method(connect, 0, width_px, height_px)
    return surface


def _IOSurfaceGetBaseAddress(ctx: "UserContext", surface: IOSurface):
    ctx.machine.charge("native_op", 4)
    return surface.base_address()


def _IOSurfaceLock(ctx: "UserContext", surface: IOSurface) -> int:
    ctx.machine.charge("native_op", 10)
    surface.lock_count += 1
    return 0


def _IOSurfaceUnlock(ctx: "UserContext", surface: IOSurface) -> int:
    ctx.machine.charge("native_op", 10)
    surface.lock_count -= 1
    return 0


def _IOSurfaceGetWidth(ctx: "UserContext", surface: IOSurface) -> int:
    return surface.width_px


def _IOSurfaceGetHeight(ctx: "UserContext", surface: IOSurface) -> int:
    return surface.height_px


def native_iosurface_exports() -> Dict[str, object]:
    return {
        "_IOSurfaceCreate": _native_IOSurfaceCreate,
        "_IOSurfaceGetBaseAddress": _IOSurfaceGetBaseAddress,
        "_IOSurfaceLock": _IOSurfaceLock,
        "_IOSurfaceUnlock": _IOSurfaceUnlock,
        "_IOSurfaceGetWidth": _IOSurfaceGetWidth,
        "_IOSurfaceGetHeight": _IOSurfaceGetHeight,
    }


# -- Cider interposed library ------------------------------------------------------


def _cider_IOSurfaceCreate(
    ctx: "UserContext", width_px: int, height_px: int
) -> IOSurface:
    """The interposed entry point: a diplomatic call into libgralloc."""
    from ..diplomacy.diplomat import Diplomat

    state = ctx.lib_state("IOSurface.cider")
    diplomat = state.get("gralloc_diplomat")
    if diplomat is None:
        diplomat = Diplomat(
            foreign_symbol="_IOSurfaceCreate",
            domestic_library="libgralloc.so",
            domestic_symbol="gralloc_alloc",
        )
        state["gralloc_diplomat"] = diplomat
    buffer = diplomat(ctx, width_px, height_px, "iosurface")
    surface = IOSurface(width_px, height_px, buffer.pixels)
    surface.gralloc_buffer = buffer
    return surface


def cider_iosurface_exports() -> Dict[str, object]:
    """The Cider IOSurface library: IOSurfaceCreate is interposed; the
    accessor entry points are persona-neutral and kept as-is."""
    exports = dict(native_iosurface_exports())
    exports["_IOSurfaceCreate"] = _cider_IOSurfaceCreate
    return exports
