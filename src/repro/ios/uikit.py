"""UIKit-lite: the iOS user interface framework.

Enough of UIKit to make the paper's user-facing claims testable: view
hierarchies with hit testing, tap/pan/pinch gesture recognizers, an
on-screen keyboard, and a UIApplication whose run loop receives low-level
events on a **Mach IPC port** — "in iOS, every app monitors a Mach IPC
port for incoming low-level event notifications and passes these events
up the user space stack through gesture recognizers and event handlers"
(paper §5.2).  On Cider those events are pumped into the port by the
eventpump thread bridging from CiderPress.

Rendering follows the real pipeline shape: views build a CALayer tree,
QuartzCore rasterises it into an IOSurface (interposed to gralloc memory
on Cider), and the frame is presented through the OpenGL ES / EAGL
library (the diplomat replacement on Cider, the native stack on an iPad).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from .quartzcore import CALayer

if TYPE_CHECKING:
    from ..kernel.process import UserContext

LIB_STATE_KEY = "UIKit"

# Event message ids on the app's event port.
EVENT_MSG_TOUCH = 0x1001
EVENT_MSG_ACCEL = 0x1002
EVENT_MSG_LIFECYCLE = 0x1003


class UITouch:
    """One touch point update."""

    def __init__(self, kind: str, x: float, y: float, pointer_id: int = 0):
        self.kind = kind  # down | move | up
        self.x = x
        self.y = y
        self.pointer_id = pointer_id


class UIView:
    """A rectangle of UI."""

    def __init__(
        self,
        x: float = 0,
        y: float = 0,
        width: float = 0,
        height: float = 0,
        background: str = " ",
    ) -> None:
        self.x = x
        self.y = y
        self.width = width
        self.height = height
        self.background = background
        self.hidden = False
        self.subviews: List["UIView"] = []
        self.superview: Optional["UIView"] = None
        self.gesture_recognizers: List["UIGestureRecognizer"] = []

    def add_subview(self, view: "UIView") -> None:
        view.superview = self
        self.subviews.append(view)

    def add_gesture_recognizer(self, recognizer: "UIGestureRecognizer"):
        recognizer.view = self
        self.gesture_recognizers.append(recognizer)

    def contains(self, x: float, y: float) -> bool:
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height

    def hit_test(self, x: float, y: float) -> Optional["UIView"]:
        """Deepest visible descendant containing the point."""
        if self.hidden or not self.contains(x, y):
            return None
        for view in reversed(self.subviews):
            hit = view.hit_test(x - self.x, y - self.y)
            if hit is not None:
                return hit
        return self

    def build_layer(self) -> CALayer:
        layer = CALayer(self.x, self.y, self.width, self.height, self.background)
        layer.hidden = self.hidden
        text = getattr(self, "display_text", None)
        if text:
            layer.text = text
        for view in self.subviews:
            layer.add_sublayer(view.build_layer())
        return layer

    def on_touch(self, touch: UITouch) -> None:
        """Subclass hook for raw touches (after gesture recognizers)."""


class UILabel(UIView):
    def __init__(self, text: str, x=0, y=0, width=200, height=40):
        super().__init__(x, y, width, height)
        self.display_text = text

    @property
    def text(self) -> str:
        return self.display_text

    @text.setter
    def text(self, value: str) -> None:
        self.display_text = value


class UIButton(UIView):
    def __init__(
        self,
        title: str,
        x=0,
        y=0,
        width=120,
        height=48,
        on_tap: Optional[Callable] = None,
        background: str = "▢",
    ):
        super().__init__(x, y, width, height, background)
        self.display_text = title
        self.on_tap = on_tap
        self.tap_count = 0

    def on_touch(self, touch: UITouch) -> None:
        if touch.kind == "up":
            self.tap_count += 1
            if self.on_tap is not None:
                self.on_tap(self)


class UITextField(UIView):
    def __init__(self, x=0, y=0, width=300, height=44):
        super().__init__(x, y, width, height, background="_")
        self.text = ""
        self.focused = False

    @property
    def display_text(self) -> str:
        return self.text + ("|" if self.focused else "")

    def on_touch(self, touch: UITouch) -> None:
        if touch.kind == "up":
            self.focused = True


class UIWindow(UIView):
    pass


# -- gesture recognizers --------------------------------------------------------


class UIGestureRecognizer:
    def __init__(self) -> None:
        self.view: Optional[UIView] = None
        self.fired = 0

    def handle(self, ctx: "UserContext", touch: UITouch) -> None:
        raise NotImplementedError


class UITapGestureRecognizer(UIGestureRecognizer):
    def __init__(self, action: Callable) -> None:
        super().__init__()
        self.action = action
        self._down_at: Optional[tuple] = None

    def handle(self, ctx, touch: UITouch) -> None:
        if touch.kind == "down":
            self._down_at = (touch.x, touch.y)
        elif touch.kind == "up" and self._down_at is not None:
            dx = abs(touch.x - self._down_at[0])
            dy = abs(touch.y - self._down_at[1])
            if dx < 12 and dy < 12:
                self.fired += 1
                self.action(self)
            self._down_at = None


class UIPanGestureRecognizer(UIGestureRecognizer):
    def __init__(self, action: Callable) -> None:
        super().__init__()
        self.action = action
        self._last: Optional[tuple] = None
        self.total_dx = 0.0
        self.total_dy = 0.0

    def handle(self, ctx, touch: UITouch) -> None:
        if touch.kind == "down":
            self._last = (touch.x, touch.y)
        elif touch.kind == "move" and self._last is not None:
            dx = touch.x - self._last[0]
            dy = touch.y - self._last[1]
            self.total_dx += dx
            self.total_dy += dy
            self._last = (touch.x, touch.y)
            self.fired += 1
            self.action(self, dx, dy)
        elif touch.kind == "up":
            self._last = None


class UIPinchGestureRecognizer(UIGestureRecognizer):
    """Two-pointer pinch-to-zoom."""

    def __init__(self, action: Callable) -> None:
        super().__init__()
        self.action = action
        self._points: Dict[int, tuple] = {}
        self._start_spread: Optional[float] = None
        self.scale = 1.0

    def handle(self, ctx, touch: UITouch) -> None:
        if touch.kind in ("down", "move"):
            self._points[touch.pointer_id] = (touch.x, touch.y)
        elif touch.kind == "up":
            self._points.pop(touch.pointer_id, None)
            self._start_spread = None
            return
        if len(self._points) == 2:
            (x0, y0), (x1, y1) = list(self._points.values())
            spread = ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
            if self._start_spread is None:
                self._start_spread = max(spread, 1.0)
            else:
                self.scale = spread / self._start_spread
                self.fired += 1
                self.action(self, self.scale)


# -- the application object -------------------------------------------------------


class UIApplication:
    """The app singleton: event port, window, render loop."""

    def __init__(self, ctx: "UserContext", delegate: object) -> None:
        self.ctx = ctx
        self.delegate = delegate
        self.state = "active"
        self.frames_rendered = 0
        self.events_handled = 0
        libc = ctx.libc
        kr, self.event_port = libc.mach_port_allocate()
        ui_state = ctx.lib_state(LIB_STATE_KEY)
        ui_state["event_port"] = self.event_port
        ui_state["application"] = self
        width, height = self._display_dims()
        self.window = UIWindow(0, 0, width, height, background=".")
        self.keyboard: Optional[UIView] = None
        self._terminated = False
        self.memory_warnings = 0
        # UIKit apps start in the foreground jetsam band and subscribe to
        # kernel memory-pressure notifications: when jetsam runs an
        # episode the app hears ``didReceiveMemoryWarning`` *before* the
        # kill phase and can shed caches to survive.
        from ..kernel.pressure import JETSAM_PRIORITY_FOREGROUND

        ctx.process.jetsam_priority = JETSAM_PRIORITY_FOREGROUND
        ctx.kernel.memory_pressure_listeners[ctx.process.pid] = (
            self._memory_warning
        )

    def _memory_warning(self, level: str) -> None:
        """Kernel pressure callback → ``didReceiveMemoryWarning``."""
        self.memory_warnings += 1
        self.dispatch_lifecycle("memory_warning")

    def _display_dims(self) -> tuple:
        display = self.ctx.machine.display
        return display.width_px, display.height_px

    # -- framework symbol access ------------------------------------------------

    def _framework(self, lib: str, symbol: str) -> Callable:
        return self.ctx.dlsym(lib, symbol)

    def _window_surface(self):
        """The window memory this app draws into: proxied from CiderPress
        when present, otherwise allocated through the GL library."""
        state = self.ctx.lib_state(LIB_STATE_KEY)
        surface = state.get("window_surface")
        if surface is not None:
            return surface
        gles = self.ctx.process.loaded_libraries.get("OpenGLES")
        width, height = self._display_dims()
        if gles is not None and "_CiderCreateWindowSurface" in gles.exports:
            create = self._framework("OpenGLES", "_CiderCreateWindowSurface")
            surface = create(self.ctx.process.name, width, height)
        else:
            compositor = getattr(self.ctx.machine, "surfaceflinger", None)
            if compositor is None:
                raise RuntimeError("no window system available")
            surface = compositor.create_surface(
                self.ctx.process.name, width, height, z_order=10
            )
        state["window_surface"] = surface
        return surface

    # -- rendering ------------------------------------------------------------------

    def render(self) -> None:
        """Rasterise the view tree and present one frame."""
        ctx = self.ctx
        state = ctx.lib_state(LIB_STATE_KEY)
        width, height = self._display_dims()

        backing = state.get("backing_surface")
        if backing is None:
            create_surface = self._framework("IOSurface", "_IOSurfaceCreate")
            backing = create_surface(width, height)
            state["backing_surface"] = backing

        backing.base_address().clear(self.window.background)
        render_tree = self._framework("QuartzCore", "_CARenderLayerTree")
        render_tree(self.window.build_layer(), backing)

        window_surface = self._window_surface()
        window_surface.lock_back().blit(backing.base_address(), 0, 0)

        eagl = state.get("eagl_context")
        if eagl is None:
            eagl = self._framework("OpenGLES", "_EAGLContextCreate")()
            self._framework("OpenGLES", "_EAGLContextSetCurrent")(eagl)
            self._framework(
                "OpenGLES", "_EAGLRenderbufferStorageFromDrawable"
            )(eagl, window_surface)
            state["eagl_context"] = eagl
        self._framework("OpenGLES", "_EAGLContextPresentRenderbuffer")(eagl)
        self.frames_rendered += 1

    # -- event handling ---------------------------------------------------------------

    def dispatch_touch(self, touch: UITouch) -> None:
        self.ctx.machine.charge("gesture_process")
        self.events_handled += 1
        target = self.window.hit_test(touch.x, touch.y)
        view = target
        while view is not None:
            for recognizer in view.gesture_recognizers:
                recognizer.handle(self.ctx, touch)
            view = view.superview
        if target is not None:
            target.on_touch(touch)

    def dispatch_lifecycle(self, action: str) -> None:
        self.events_handled += 1
        from ..kernel.pressure import (
            JETSAM_PRIORITY_BACKGROUND,
            JETSAM_PRIORITY_FOREGROUND,
        )

        if action == "pause":
            self.state = "background"
            self.ctx.process.jetsam_priority = JETSAM_PRIORITY_BACKGROUND
            hook = getattr(self.delegate, "on_pause", None)
        elif action == "resume":
            self.state = "active"
            self.ctx.process.jetsam_priority = JETSAM_PRIORITY_FOREGROUND
            hook = getattr(self.delegate, "on_resume", None)
        elif action == "memory_warning":
            hook = getattr(self.delegate, "did_receive_memory_warning", None)
        elif action == "terminate":
            self._terminated = True
            hook = getattr(self.delegate, "will_terminate", None)
        else:
            hook = None
        if hook is not None:
            hook(self)

    def dispatch_accel(self, sample: object) -> None:
        self.events_handled += 1
        hook = getattr(self.delegate, "on_accelerometer", None)
        if hook is not None:
            hook(self, sample)

    # -- keyboard --------------------------------------------------------------------------

    def show_keyboard(self, target: UITextField) -> None:
        """Attach the on-screen keyboard wired to ``target``."""
        if self.keyboard is not None:
            return
        width, height = self._display_dims()
        keyboard = UIView(0, height - 200, width, 200, background="=")
        keys = "qwertyuiopasdfghjklzxcvbnm"
        for index, ch in enumerate(keys):
            col, row = index % 10, index // 10
            key = UIButton(
                ch,
                x=8 + col * (width - 16) // 10,
                y=8 + row * 62,
                width=(width - 16) // 10 - 4,
                height=56,
                on_tap=lambda btn, c=ch: self._key_pressed(target, c),
            )
            keyboard.add_subview(key)
        self.keyboard = keyboard
        self.window.add_subview(keyboard)

    def _key_pressed(self, target: UITextField, ch: str) -> None:
        target.text += ch

    # -- the run loop ------------------------------------------------------------------------

    def run(self) -> int:
        """Receive events from the Mach port until terminated."""
        libc = self.ctx.libc
        while not self._terminated:
            code, msg = libc.mach_msg_receive(self.event_port)
            if code != 0 or msg is None:
                break
            body = msg.body if isinstance(msg.body, dict) else {}
            if msg.msg_id == EVENT_MSG_TOUCH:
                self.dispatch_touch(
                    UITouch(
                        body.get("kind", "down"),
                        body.get("x", 0.0),
                        body.get("y", 0.0),
                        body.get("pointer_id", 0),
                    )
                )
            elif msg.msg_id == EVENT_MSG_ACCEL:
                self.dispatch_accel(body)
            elif msg.msg_id == EVENT_MSG_LIFECYCLE:
                self.dispatch_lifecycle(body.get("action", ""))
            if not self._terminated:
                self.render()
        return 0


def _apply_cider_arguments(ctx: "UserContext", app: UIApplication) -> None:
    """When launched by CiderPress, attach the proxied window surface and
    start the eventpump bridge thread (paper §3, §5.2)."""
    argv = ctx.process.argv
    state = ctx.lib_state(LIB_STATE_KEY)
    if "--cider-surface" in argv:
        surface_id = int(argv[argv.index("--cider-surface") + 1])
        registry = getattr(ctx.machine, "cider_surfaces", {})
        surface = registry.get(surface_id)
        if surface is not None:
            state["window_surface"] = surface
    if "--cider-socket" in argv:
        from .eventpump import start_eventpump

        socket_path = argv[argv.index("--cider-socket") + 1]
        start_eventpump(ctx, socket_path, app.event_port)


def UIApplicationMain(ctx: "UserContext", delegate: object) -> int:
    """The UIKit entry point every iOS app's main() calls."""
    app = UIApplication(ctx, delegate)
    _apply_cider_arguments(ctx, app)
    launched = getattr(delegate, "did_finish_launching", None)
    if launched is not None:
        launched(app)
    app.render()
    return app.run()


def uikit_exports() -> Dict[str, object]:
    return {
        "_UIApplicationMain": UIApplicationMain,
    }
