"""The iOS framework/dylib closure.

Cider copies the framework binaries from the Xcode SDK and the background
service binaries from a real iOS device (paper §3).  This module builds
that library set as synthetic Mach-O images: the ~115 dylibs / ~90 MB that
dyld maps into *every* iOS process "irrespective of whether or not those
libraries are used by the binary" (§6.2) — the numbers behind the 14x
fork+exit result.

A handful of frameworks are functional (their exports are implemented by
modules in :mod:`repro.ios`); the long tail are structural filler with
realistic names and sizes, exactly the role they play in the fork/exec
measurements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..binfmt import KB, MB, BinaryImage, macho_dylib
from .dyld import SHARED_CACHE_PATH, SharedCache

if TYPE_CHECKING:
    from ..kernel.kernel import Kernel

#: Target closure shape from the paper.
TARGET_LIBRARY_COUNT = 115
TARGET_TOTAL_MB = 90

#: (name, install_path, size_kb) for the recognisable frameworks.
_MAJOR_LIBS: List[Tuple[str, str, int]] = [
    ("libSystem.B.dylib", "/usr/lib/libSystem.B.dylib", 1536),
    ("libobjc.A.dylib", "/usr/lib/libobjc.A.dylib", 1024),
    ("libc++.1.dylib", "/usr/lib/libc++.1.dylib", 900),
    ("libc++abi.dylib", "/usr/lib/libc++abi.dylib", 300),
    ("libicucore.A.dylib", "/usr/lib/libicucore.A.dylib", 2048),
    ("libz.1.dylib", "/usr/lib/libz.1.dylib", 256),
    ("libsqlite3.dylib", "/usr/lib/libsqlite3.dylib", 800),
    ("libxml2.2.dylib", "/usr/lib/libxml2.2.dylib", 1100),
    (
        "CoreFoundation",
        "/System/Library/Frameworks/CoreFoundation.framework/CoreFoundation",
        4096,
    ),
    (
        "Foundation",
        "/System/Library/Frameworks/Foundation.framework/Foundation",
        5120,
    ),
    ("UIKit", "/System/Library/Frameworks/UIKit.framework/UIKit", 11264),
    (
        "QuartzCore",
        "/System/Library/Frameworks/QuartzCore.framework/QuartzCore",
        3072,
    ),
    (
        "CoreGraphics",
        "/System/Library/Frameworks/CoreGraphics.framework/CoreGraphics",
        6144,
    ),
    (
        "OpenGLES",
        "/System/Library/Frameworks/OpenGLES.framework/OpenGLES",
        1024,
    ),
    ("IOSurface", "/System/Library/PrivateFrameworks/IOSurface.framework/IOSurface", 256),
    ("IOKit", "/System/Library/Frameworks/IOKit.framework/Versions/A/IOKit", 512),
    ("WebKit", "/System/Library/PrivateFrameworks/WebKit.framework/WebKit", 18432),
    (
        "JavaScriptCore",
        "/System/Library/PrivateFrameworks/JavaScriptCore.framework/JavaScriptCore",
        7168,
    ),
    ("CFNetwork", "/System/Library/Frameworks/CFNetwork.framework/CFNetwork", 2560),
    ("Security", "/System/Library/Frameworks/Security.framework/Security", 2048),
    (
        "SystemConfiguration",
        "/System/Library/Frameworks/SystemConfiguration.framework/SystemConfiguration",
        768,
    ),
    ("CoreText", "/System/Library/Frameworks/CoreText.framework/CoreText", 2048),
    ("ImageIO", "/System/Library/Frameworks/ImageIO.framework/ImageIO", 2048),
    ("CoreImage", "/System/Library/Frameworks/CoreImage.framework/CoreImage", 2560),
    ("AVFoundation", "/System/Library/Frameworks/AVFoundation.framework/AVFoundation", 3072),
    ("CoreMedia", "/System/Library/Frameworks/CoreMedia.framework/CoreMedia", 1536),
    ("CoreAudio", "/System/Library/Frameworks/CoreAudio.framework/CoreAudio", 512),
    ("AudioToolbox", "/System/Library/Frameworks/AudioToolbox.framework/AudioToolbox", 2560),
    ("MobileCoreServices", "/System/Library/Frameworks/MobileCoreServices.framework/MobileCoreServices", 256),
    ("CoreLocation", "/System/Library/Frameworks/CoreLocation.framework/CoreLocation", 768),
    ("AddressBook", "/System/Library/Frameworks/AddressBook.framework/AddressBook", 512),
    ("StoreKit", "/System/Library/Frameworks/StoreKit.framework/StoreKit", 256),
    ("iAd", "/System/Library/Frameworks/iAd.framework/iAd", 768),
    ("MapKit", "/System/Library/Frameworks/MapKit.framework/MapKit", 1536),
    ("GLKit", "/System/Library/Frameworks/GLKit.framework/GLKit", 512),
    ("SpriteKit", "/System/Library/Frameworks/SpriteKit.framework/SpriteKit", 1024),
    ("libdispatch.dylib", "/usr/lib/system/libdispatch.dylib", 512),
    ("libxpc.dylib", "/usr/lib/system/libxpc.dylib", 512),
    ("libnotify.dylib", "/usr/lib/system/libnotify.dylib", 128),
    ("libkqueue.dylib", "/usr/lib/system/libkqueue.dylib", 128),
]

#: Private-framework filler names used to reach TARGET_LIBRARY_COUNT.
_FILLER_NAMES = [
    "AppSupport", "BackBoardServices", "BaseBoard", "Bom", "CaptiveNetwork",
    "Celestial", "ChunkingLibrary", "CommonUtilities", "CoreBrightness",
    "CorePDF", "CoreSymbolication", "CoreTelephony", "CoreUtils",
    "CrashReporterSupport", "DataAccessExpress", "DictionaryServices",
    "FontServices", "GraphicsServices", "HomeSharing", "IAP",
    "IDSFoundation", "IMCore", "IOMobileFramebufferUser", "IOSurfaceAccelerator",
    "LangAnalysis", "MallocStackLogging", "ManagedConfiguration",
    "MediaControlSender", "MediaRemote", "MediaServices", "MobileAsset",
    "MobileBluetooth", "MobileIcons", "MobileInstallation",
    "MobileKeyBag", "MobileWiFi", "Notes", "PersistentConnection",
    "PhotoLibraryServices", "PlugInKit", "ProofReader", "ProtocolBuffer",
    "SpringBoardServices", "TCC", "TelephonyUtilities", "TextInput",
    "Twitter", "UserNotificationServices", "VectorKit", "WebCore",
    "WebBookmarks", "WirelessDiagnostics", "AccountSettings",
    "AggregateDictionary", "AirTraffic", "AppleAccount", "AssetsLibraryServices",
    "AuthKit", "BluetoothManager", "CacheDelete", "CalendarDaemon",
    "CalendarDatabase", "CalendarFoundation", "CertInfo", "CertUI",
    "ContentIndex", "CoreDAV", "CoreDuet", "CoreFollowUp",
    "CoreRecents", "CoreSDB", "CoreSuggestions", "DCIMServices",
    "DeviceIdentity", "DiagnosticLogCollection", "DistributedEvaluation",
]


def _functional_exports(lib_name: str) -> Optional[Dict[str, object]]:
    """Exports for the frameworks that have real implementations."""
    # Imported lazily: the framework modules depend on the wider ios
    # package, which depends on this module's image builders.
    if lib_name == "UIKit":
        from .uikit import uikit_exports

        return uikit_exports()
    if lib_name == "OpenGLES":
        from .opengles import native_opengles_exports

        return native_opengles_exports()
    if lib_name == "IOSurface":
        from .iosurface import native_iosurface_exports

        return native_iosurface_exports()
    if lib_name == "QuartzCore":
        from .quartzcore import quartzcore_exports

        return quartzcore_exports()
    if lib_name == "CoreGraphics":
        from .coregraphics import coregraphics_exports

        return coregraphics_exports()
    if lib_name == "Foundation":
        from .foundation import foundation_exports

        return foundation_exports()
    if lib_name == "WebKit":
        from .webkit import webkit_exports

        return webkit_exports()
    if lib_name == "libkqueue.dylib":
        from .kqueue import kqueue_exports

        return kqueue_exports()
    return None


def build_framework_images() -> List[Tuple[str, BinaryImage]]:
    """Construct the full (install_path, image) closure."""
    entries: List[Tuple[str, BinaryImage]] = []
    names_seen = []
    major_kb = sum(kb for _, _, kb in _MAJOR_LIBS)
    filler_count = TARGET_LIBRARY_COUNT - len(_MAJOR_LIBS)
    filler_total_kb = TARGET_TOTAL_MB * 1024 - major_kb
    filler_kb = max(64, filler_total_kb // filler_count)

    for name, path, size_kb in _MAJOR_LIBS:
        exports = _functional_exports(name)
        image = macho_dylib(
            name,
            functions=None,
            text_kb=int(size_kb * 0.8),
            data_kb=int(size_kb * 0.2),
            install_name=path,
        )
        if exports:
            from ..binfmt.image import Symbol

            for sym_name, fn in exports.items():
                image.exports[sym_name] = Symbol(sym_name, fn=fn)
        entries.append((path, image))
        names_seen.append(name)

    for filler in _FILLER_NAMES[:filler_count]:
        path = (
            f"/System/Library/PrivateFrameworks/{filler}.framework/{filler}"
        )
        image = macho_dylib(
            filler,
            text_kb=int(filler_kb * 0.8),
            data_kb=int(filler_kb * 0.2),
            install_name=path,
        )
        entries.append((path, image))

    # libSystem is the umbrella: every iOS binary links it, and linking it
    # pulls the entire base closure (how a real SDK app ends up with ~115
    # images resident before main()).
    libsystem = entries[0][1]
    libsystem.deps.extend(
        path for path, image in entries[1:] if image is not libsystem
    )
    return entries


def install_ios_frameworks(
    kernel: "Kernel", shared_cache: bool = False
) -> List[BinaryImage]:
    """Copy the framework binaries into the overlay filesystem.

    With ``shared_cache=True`` a prelinked dyld cache file is also
    installed (the optimisation the Cider prototype lacked)."""
    vfs = kernel.vfs
    entries = build_framework_images()
    for path, image in entries:
        vfs.install_binary(path, image)
    if shared_cache:
        install_shared_cache(kernel)
    return [image for _path, image in entries]


def install_shared_cache(kernel: "Kernel") -> SharedCache:
    """Build the prelinked cache from the *currently installed* framework
    images (run after any interposition so the cache indexes the
    libraries dyld will actually hand out)."""
    from ..binfmt import BinaryFormat, BinaryKind
    from ..kernel.vfs import RegularFile

    vfs = kernel.vfs
    images = []
    for root in ("/usr/lib", "/System/Library"):
        if not vfs.exists(root):
            continue
        for path in vfs.walk(root):
            node = vfs.resolve(path)
            image = getattr(node, "binary_image", None)
            if (
                isinstance(node, RegularFile)
                and image is not None
                and image.format is BinaryFormat.MACHO
                and image.kind is BinaryKind.SHARED_LIBRARY
            ):
                images.append(image)
    cache_dir = SHARED_CACHE_PATH.rsplit("/", 1)[0]
    vfs.makedirs(cache_dir)
    cache_file = vfs.create_file(SHARED_CACHE_PATH, exist_ok=True)
    cache = SharedCache(images)
    cache_file.shared_cache = cache  # type: ignore[attr-defined]
    return cache
