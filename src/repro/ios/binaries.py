"""Base iOS binaries: service executables, hello world, and a shell.

The Mach-O counterparts of :mod:`repro.android.binaries` — the iOS test
binaries the paper's fork+exec(ios) and fork+sh(ios) measurements spawn.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..binfmt import BinaryImage, macho_executable

if TYPE_CHECKING:
    from ..kernel import Kernel
    from ..kernel.process import UserContext

LIBSYSTEM_DEP = "/usr/lib/libSystem.B.dylib"


def launchd_entry(ctx: "UserContext", argv: List[str]) -> int:
    from .services import launchd_main

    return launchd_main(ctx, argv)


def configd_entry(ctx: "UserContext", argv: List[str]) -> int:
    from .services import configd_main

    return configd_main(ctx, argv)


def notifyd_entry(ctx: "UserContext", argv: List[str]) -> int:
    from .services import notifyd_main

    return notifyd_main(ctx, argv)


def syslogd_entry(ctx: "UserContext", argv: List[str]) -> int:
    from .services import syslogd_main

    return syslogd_main(ctx, argv)


def hello_entry(ctx: "UserContext", argv: List[str]) -> int:
    """hello world, iOS edition."""
    ctx.work(220)
    fd = ctx.libc.open("/dev/null", 0o1)
    ctx.libc.write(fd, b"hello from ios\n")
    ctx.libc.close(fd)
    return 0


def sh_entry(ctx: "UserContext", argv: List[str]) -> int:
    """A minimal iOS shell (for the iPad-side fork+sh measurement)."""
    libc = ctx.libc
    ctx.machine.charge("shell_overhead")
    command = [a for a in argv[1:] if a != "-c"]
    if not command:
        return 0

    pid = libc.posix_spawn(command[0], command)
    if pid == -1:
        return 126
    result = libc.waitpid(pid)
    if result == -1:
        return 126
    _pid, code = result
    return code


def make_launchd_image() -> BinaryImage:
    return macho_executable(
        "launchd", launchd_entry, deps=[LIBSYSTEM_DEP], text_kb=512
    )


def make_configd_image() -> BinaryImage:
    return macho_executable(
        "configd", configd_entry, deps=[LIBSYSTEM_DEP], text_kb=384
    )


def make_notifyd_image() -> BinaryImage:
    return macho_executable(
        "notifyd", notifyd_entry, deps=[LIBSYSTEM_DEP], text_kb=256
    )


def make_syslogd_image() -> BinaryImage:
    return macho_executable(
        "syslogd", syslogd_entry, deps=[LIBSYSTEM_DEP], text_kb=192
    )


def make_hello_macho_image() -> BinaryImage:
    return macho_executable(
        "hello-ios", hello_entry, deps=[LIBSYSTEM_DEP], text_kb=16
    )


def make_sh_macho_image() -> BinaryImage:
    return macho_executable("sh-ios", sh_entry, deps=[LIBSYSTEM_DEP], text_kb=300)


def install_ios_binaries(kernel: "Kernel") -> None:
    vfs = kernel.vfs
    vfs.makedirs("/sbin")
    vfs.makedirs("/usr/libexec")
    vfs.makedirs("/bin")
    vfs.install_binary("/sbin/launchd", make_launchd_image())
    vfs.install_binary("/usr/libexec/configd", make_configd_image())
    vfs.install_binary("/usr/libexec/notifyd", make_notifyd_image())
    vfs.install_binary("/usr/libexec/syslogd", make_syslogd_image())
    vfs.install_binary("/bin/hello-ios", make_hello_macho_image())
    vfs.install_binary("/bin/sh-ios", make_sh_macho_image())
