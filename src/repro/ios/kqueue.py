"""libkqueue: BSD kqueue/kevent as a user-space library.

"The BSD kqueue and kevent notification mechanisms were easier to
support in Cider as user space libraries because of the availability of
existing open source user-level implementations.  Because they did not
need to be incorporated into the kernel, they did not need to be
incorporated using duct tape, but simply via API interposition."
(paper §4.2)

The implementation multiplexes registered filters over the select
syscall — exactly what the user-level libkqueue does on Linux.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from ..kernel.process import UserContext

EVFILT_READ = -1
EVFILT_WRITE = -2

EV_ADD = 0x0001
EV_DELETE = 0x0002

LIB_STATE_KEY = "libkqueue"


@dataclass(frozen=True)
class KEvent:
    """struct kevent."""

    ident: int  # the fd
    filter: int
    flags: int = 0
    data: int = 0


class KQueue:
    """One kqueue instance: a registration table."""

    _next_id = 1

    def __init__(self) -> None:
        self.kq_id = KQueue._next_id
        KQueue._next_id += 1
        self.filters: Dict[Tuple[int, int], KEvent] = {}


def kqueue(ctx: "UserContext") -> KQueue:
    """kqueue(2) — entirely user-level here."""
    ctx.machine.charge("gl_call_cpu", 0.1)  # negligible library work
    kq = KQueue()
    ctx.lib_state(LIB_STATE_KEY)[f"kq:{kq.kq_id}"] = kq
    return kq


def kevent(
    ctx: "UserContext",
    kq: KQueue,
    changes: Optional[List[KEvent]] = None,
    max_events: int = 16,
    timeout_ns: Optional[float] = 0,
) -> List[KEvent]:
    """kevent(2): apply changes, then poll for triggered events."""
    for change in changes or []:
        key = (change.ident, change.filter)
        if change.flags & EV_DELETE:
            kq.filters.pop(key, None)
        elif change.flags & EV_ADD:
            kq.filters[key] = change

    read_fds = [
        ident for (ident, filt) in kq.filters if filt == EVFILT_READ
    ]
    write_fds = [
        ident for (ident, filt) in kq.filters if filt == EVFILT_WRITE
    ]
    if not read_fds and not write_fds:
        return []
    result = ctx.libc.select(read_fds, write_fds, timeout_ns)
    if result == -1:
        return []
    ready_r, ready_w = result
    events = [KEvent(fd, EVFILT_READ) for fd in ready_r]
    events += [KEvent(fd, EVFILT_WRITE) for fd in ready_w]
    return events[:max_events]


def kqueue_exports() -> Dict[str, object]:
    return {"_kqueue": kqueue, "_kevent": kevent}
