"""CFNetwork-lite: the NSURLSession slice iOS apps fetch with.

A thin foreign-API veneer over the shared BSD socket surface: the data
task resolves the host with ``getaddrinfo``, opens an AF_INET stream
socket, and speaks HTTP/1.1 to the in-sim origin — every byte moving
through the *same* XNU trap numbers Bionic's clients use Linux numbers
for.  CFNetwork adds API shape (sessions, tasks, completion handlers),
not transport: transport is the kernel's, which is the Cider story.

Fetch latency lands in the ``cfnetwork.fetch.ns`` histogram when the
observatory is attached (compare with ``urlconnection.fetch.ns`` for the
cross-persona plot netbench prints).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

from ..net.http import HTTPD_PORT
from ..net.resilience import ResilienceEngine

if TYPE_CHECKING:
    from ..kernel.process import UserContext


def parse_url(url: str) -> Tuple[str, int, str]:
    """``http://host[:port]/path`` -> (host, port, path)."""
    rest = url[len("http://") :] if url.startswith("http://") else url
    netloc, slash, path = rest.partition("/")
    host, colon, port_s = netloc.partition(":")
    port = int(port_s) if colon else HTTPD_PORT
    return host, port, "/" + path if slash else "/"


class NSURLResponse:
    """The response head (status + the URL it answered for)."""

    def __init__(self, url: str, status_code: int) -> None:
        self.url = url
        self.status_code = status_code

    def __repr__(self) -> str:
        return f"<NSURLResponse {self.status_code} {self.url!r}>"


class NSURLSessionDataTask:
    """One fetch.  Created suspended; ``resume()`` runs it to completion
    (the simulation's run loop is the scheduler itself)."""

    def __init__(
        self,
        ctx: "UserContext",
        url: str,
        completion: Optional[
            Callable[[bytes, NSURLResponse, Optional[str]], None]
        ] = None,
    ) -> None:
        self._ctx = ctx
        self.url = url
        self._completion = completion
        self.response: Optional[NSURLResponse] = None
        self.data: bytes = b""
        self.error: Optional[str] = None
        self.state = "suspended"

    def resume(self) -> "NSURLSessionDataTask":
        ctx = self._ctx
        machine = ctx.machine
        machine.charge("native_op", 24)  # task state machine + URL parse
        host, port, path = parse_url(self.url)
        self.state = "running"
        # Trace root: a resumed task is a request entry point.
        obs = machine.obs
        causal = obs.causal if obs is not None else None
        if causal is not None:
            causal.begin_trace(f"fetch {path}")
        try:
            with machine.span("cfnetwork.fetch", path, url=self.url):
                # Transport + fault tolerance both ride the shared
                # engine — the same retries/breaker/hedge policy Android
                # clients get, through XNU trap numbers.
                result = ResilienceEngine.shared(ctx).fetch(
                    ctx, host, path, port
                )
        finally:
            if causal is not None:
                causal.end_trace()
        status, body = result.status, result.body
        if status < 0:
            self.error = f"NSURLErrorDomain errno={result.errno}"
            status = -1
        self.response = NSURLResponse(self.url, status)
        self.data = body
        self.state = "completed"
        machine.emit(
            "cfnetwork", "task_complete", url=self.url, status=status,
            bytes=len(body),
        )
        if self._completion is not None:
            self._completion(self.data, self.response, self.error)
        return self


class NSURLSession:
    """``[NSURLSession sharedSession]`` — bound to one user context."""

    def __init__(self, ctx: "UserContext") -> None:
        self._ctx = ctx

    @classmethod
    def shared(cls, ctx: "UserContext") -> "NSURLSession":
        state = ctx.lib_state("CFNetwork")
        session = state.get("shared_session")
        if session is None:
            session = state["shared_session"] = cls(ctx)
        return session

    def data_task_with_url(
        self,
        url: str,
        completion: Optional[
            Callable[[bytes, NSURLResponse, Optional[str]], None]
        ] = None,
    ) -> NSURLSessionDataTask:
        self._ctx.machine.charge("native_op", 16)
        return NSURLSessionDataTask(self._ctx, url, completion)
